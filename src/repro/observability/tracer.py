"""The span/event tracer.

Events follow the Chrome ``trace_event`` vocabulary (complete spans
``ph="X"``, instants ``ph="i"``, counters ``ph="C"``) so the export to
Perfetto is a direct serialization.  Timestamps are *simulated* basic
blocks (1 block = 1 microsecond in the viewer), ``pid`` identifies the
trial (remapped by the driver when traces from many trials are merged)
and ``tid`` the MPI rank, which lines every rank of a trial up as one
named thread track.

The tracer is only consulted through
:mod:`repro.observability.runtime`; when no tracer is active the entire
instrumentation reduces to one ``is None`` check per event site.
"""

from __future__ import annotations

from typing import Any

#: Hard cap on buffered events; beyond it events are counted, not kept
#: (a runaway trace must not exhaust driver memory).
MAX_EVENTS = 200_000

#: Event categories emitted by the instrumented layers, one per
#: execution layer (the acceptance check asserts all three core layers
#: appear in a traced trial).
CAT_VM = "vm"
CAT_MPI = "mpi"
CAT_ADI = "adi"
CAT_CHANNEL = "channel"
CAT_INJECTION = "injection"
CAT_DETECTOR = "detector"
CAT_TRIAL = "trial"


class Tracer:
    """Collects trace events for one scope (usually one trial)."""

    def __init__(self, max_events: int = MAX_EVENTS) -> None:
        self.events: list[dict[str, Any]] = []
        self.max_events = max_events
        self.dropped = 0

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _emit(self, event: dict[str, Any]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def complete(
        self,
        name: str,
        cat: str,
        ts: int,
        dur: int,
        *,
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """One completed span: ``[ts, ts + dur]`` in simulated blocks."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": int(ts),
            "dur": max(int(dur), 1),
            "pid": 0,
            "tid": int(tid),
        }
        if args:
            event["args"] = args
        self._emit(event)

    def instant(
        self,
        name: str,
        cat: str,
        ts: int,
        *,
        tid: int = 0,
        args: dict | None = None,
    ) -> None:
        """A point event (thread-scoped)."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": int(ts),
            "pid": 0,
            "tid": int(tid),
        }
        if args:
            event["args"] = args
        self._emit(event)

    def counter(
        self, name: str, ts: int, values: dict[str, float], *, tid: int = 0
    ) -> None:
        """A counter track sample (renders as a filled area chart)."""
        self._emit(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": int(ts),
                "pid": 0,
                "tid": int(tid),
                "args": {k: float(v) for k, v in values.items()},
            }
        )

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def categories(self) -> set[str]:
        return {e["cat"] for e in self.events}

    def __len__(self) -> int:
        return len(self.events)
