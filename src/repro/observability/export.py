"""Chrome ``trace_event`` export and validation.

The JSON-object format (``{"traceEvents": [...]}``) loads directly in
Perfetto (https://ui.perfetto.dev) and the legacy ``chrome://tracing``
viewer.  Timestamps are simulated basic blocks; ``displayTimeUnit`` is
milliseconds, so one block renders as one microsecond.

:class:`TraceCollector` merges per-trial event lists from a campaign:
each trial becomes one Perfetto "process" (``pid``), each MPI rank one
thread, with metadata events naming both.  Trials are sorted by
``(region, index)`` before pid assignment, so the merged trace is
deterministic regardless of executor completion order.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any

_VALID_PHASES = {"X", "B", "E", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"}


def chrome_trace(
    events: list[dict[str, Any]], *, metadata: dict | None = None
) -> dict:
    """Wrap an event list in the Chrome JSON-object trace format."""
    return {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def write_chrome_trace(
    path: str | Path, events: list[dict[str, Any]], *, metadata: dict | None = None
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(chrome_trace(events, metadata=metadata), fh, sort_keys=True)
        fh.write("\n")
    return path


def validate_chrome_trace(obj: Any) -> list[str]:
    """Schema-check a parsed trace; returns a list of problems (empty =
    valid).  Checks the structural invariants Perfetto relies on: the
    ``traceEvents`` array, required event fields, known phases, and
    non-negative integer timestamps."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, int) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: bad {key} {event.get(key)!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if len(problems) >= 50:
            problems.append("... (truncated)")
            break
    return problems


def trace_categories(obj: dict) -> set[str]:
    """Categories present in a parsed trace (layer-coverage check)."""
    return {
        e.get("cat", "")
        for e in obj.get("traceEvents", [])
        if isinstance(e, dict) and e.get("ph") != "M"
    }


class TraceCollector:
    """Accumulates per-trial event lists into one merged trace.

    ``max_trials`` bounds memory for large campaigns.  Beyond it trials
    are *dropped*, never silently: the count lands in the trace
    metadata, in the campaign's ``repro_trace_trials_dropped_total``
    counter (when a metrics registry is attached), and in a one-shot
    :class:`UserWarning` naming the cap to raise.
    """

    def __init__(self, max_trials: int = 256) -> None:
        self.max_trials = max_trials
        self.dropped = 0
        #: Campaign metrics registry; the engine attaches its own so
        #: every dropped trial is visible on the scrape path.
        self.metrics = None
        self._warned = False
        #: ``(region, index) -> (label, events)``
        self._trials: dict[tuple[str, int], tuple[str, list[dict]]] = {}

    def add_trial(
        self, region: str, index: int, label: str, events: list[dict]
    ) -> bool:
        """File one trial's events; returns False when the
        ``max_trials`` cap dropped it."""
        key = (region, index)
        if key in self._trials:
            return True
        if len(self._trials) >= self.max_trials:
            self.dropped += 1
            if self.metrics is not None:
                self.metrics.counter("repro_trace_trials_dropped_total").inc()
            if not self._warned:
                self._warned = True
                warnings.warn(
                    f"trace collector reached max_trials={self.max_trials}; "
                    "further trials are counted in "
                    "repro_trace_trials_dropped_total and omitted from the "
                    "merged trace (raise max_trials to keep them)",
                    stacklevel=2,
                )
            return False
        self._trials[key] = (label, events)
        return True

    def __len__(self) -> int:
        return len(self._trials)

    def merged_events(self) -> list[dict]:
        """All events with pids assigned by sorted (region, index) and
        process-name metadata prepended."""
        merged: list[dict] = []
        for pid, (key, (label, events)) in enumerate(
            sorted(self._trials.items()), start=1
        ):
            merged.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
            ranks = sorted({e.get("tid", 0) for e in events})
            for rank in ranks:
                merged.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": rank,
                        "args": {"name": f"rank {rank}"},
                    }
                )
            for event in events:
                remapped = dict(event)
                remapped["pid"] = pid
                merged.append(remapped)
        return merged

    def write(self, path: str | Path, *, metadata: dict | None = None) -> Path:
        meta = {"trials": len(self._trials), "dropped_trials": self.dropped}
        meta.update(metadata or {})
        return write_chrome_trace(path, self.merged_events(), metadata=meta)
