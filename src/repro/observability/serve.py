"""Live campaign telemetry: a zero-dependency HTTP scrape service.

Three endpoints, all derived from state the campaign already maintains:

``/metrics``
    The live merged :class:`~repro.observability.metrics.MetricsRegistry`
    in the Prometheus textfile exposition format - the same bytes
    ``campaign run --metrics`` writes at exit, scrapeable mid-run.
``/status``
    JSON per-(app, region) tallies with Cochran CI half-widths - the
    same rows as ``campaign status --json``, but folded incrementally
    from live trial results (or streamed from a store), never by
    loading a full store.
``/progress``
    Trials done/planned, throughput, and ETA.

Two sources can sit behind the endpoints:

* :class:`TelemetryHub` - attached to a running campaign engine.  The
  engine folds every finished trial into the hub under the hub's lock;
  request handlers copy state under that lock and render *outside* it,
  so a slow scraper can never stall trial dispatch (each request also
  runs on its own daemon thread - the server applies backpressure to
  clients, not to the campaign).
* :class:`StoreTelemetry` - ``python -m repro serve --store X``: follows
  an append-only result store *incrementally* (only bytes appended
  since the previous scrape are parsed), so serving a million-trial
  store needs memory for the summary fold, not the store.

Everything is stdlib: :mod:`http.server` + :mod:`threading`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.engine.store import StoreSummary, open_store
from repro.observability.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    render_prometheus,
)

#: Version stamped into every ``/status`` and ``/progress`` payload.
SERVE_SCHEMA_VERSION = 1


def parse_endpoint(text: str, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """``[HOST:]PORT`` -> ``(host, port)``; bare port binds loopback."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = default_host, text
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"bad serve endpoint {text!r}; expected [HOST:]PORT")
    if not 0 <= port <= 65535:
        raise ValueError(f"serve port out of range: {port}")
    return host or default_host, port


def serve_endpoint(
    telemetry, endpoint: str, default_host: str = "127.0.0.1"
) -> "TelemetryServer":
    """Parse ``[HOST:]PORT``, bind a :class:`TelemetryServer` to it and
    start serving.

    The one parse-and-bind home shared by ``campaign run --serve``,
    ``campaign serve-work`` and ``python -m repro serve``; raises
    :class:`ValueError` for a malformed endpoint (the CLIs report it
    and exit 2) and lets :class:`OSError` from a busy port propagate.
    """
    host, port = parse_endpoint(endpoint, default_host)
    return TelemetryServer(telemetry, host, port).start()


class TelemetryHub:
    """Thread-safe live telemetry state for one running campaign.

    The campaign engine is the only writer; every ingestion happens
    under :attr:`lock` (an :class:`~threading.RLock`, because progress
    emission nests inside trial ingestion).  Request handlers take the
    same lock just long enough to copy - a metrics snapshot, a summary
    row list - and do all rendering outside it.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.lock = threading.RLock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.summary = StoreSummary()
        self.started = time.monotonic()
        self._done = 0
        #: ``(app, region) -> planned trials`` (``None`` = open-ended).
        self._planned: dict[tuple[str, str], int | None] = {}

    # -- engine-side writers ------------------------------------------
    def note_region(self, app: str, region: str, planned: int | None) -> None:
        with self.lock:
            self._planned[(app, region)] = planned

    def note_trial(self, result) -> None:
        with self.lock:
            self.summary.add(result)
            self._done += 1

    # -- reader-side payloads -----------------------------------------
    def metrics_snapshot(self) -> MetricsSnapshot:
        with self.lock:
            return self.registry.snapshot()

    def metrics_text(self) -> str:
        return render_prometheus(self.metrics_snapshot())

    def status_payload(self) -> dict:
        with self.lock:
            rows = self.summary.rows()
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "regions": [row.to_json() for row in rows],
        }

    def progress_payload(self) -> dict:
        with self.lock:
            done = self._done
            errors = self.summary.errors
            planned = dict(self._planned)
            elapsed = time.monotonic() - self.started
        total: int | None = None
        if planned and all(n is not None for n in planned.values()):
            total = sum(planned.values())
        throughput = done / elapsed if elapsed > 0 else 0.0
        eta = None
        if total is not None and throughput > 0 and total > done:
            eta = (total - done) / throughput
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "trials_done": done,
            "trials_planned": total,
            "errors": errors,
            "elapsed_seconds": elapsed,
            "throughput_trials_per_second": throughput,
            "eta_seconds": eta,
            "regions": [
                {"app": app, "region": region, "planned": n}
                for (app, region), n in sorted(planned.items())
            ],
        }


class StoreTelemetry:
    """Store-backed telemetry source: the standalone ``serve`` mode.

    Follows a result store of either backend incrementally through the
    store's follower (byte offset for JSONL, rowid high-water mark for
    SQLite): each refresh ingests only records appended since the last
    one.  A follower-reported reset (the store was rewritten) restarts
    the fold from zero.
    """

    def __init__(self, path) -> None:
        store = open_store(path)
        self.path = Path(store.path)
        self.lock = threading.RLock()
        self.summary = StoreSummary()
        self.started = time.monotonic()
        self._follower = store.follower()
        self._seen: set[str] = set()
        self._done = 0
        store.close()

    def refresh(self) -> None:
        with self.lock:
            results, reset = self._follower.poll()
            if reset:
                self._seen.clear()
                self.summary = StoreSummary()
                self._done = 0
            for result in results:
                if result.key in self._seen:
                    continue
                self._seen.add(result.key)
                self.summary.add(result)
                self._done += 1

    def metrics_snapshot(self) -> MetricsSnapshot:
        self.refresh()
        registry = MetricsRegistry()
        with self.lock:
            self.summary.fill_registry(registry)
        return registry.snapshot()

    def metrics_text(self) -> str:
        return render_prometheus(self.metrics_snapshot())

    def status_payload(self) -> dict:
        self.refresh()
        with self.lock:
            rows = self.summary.rows()
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "store": str(self.path),
            "regions": [row.to_json() for row in rows],
        }

    def progress_payload(self) -> dict:
        self.refresh()
        with self.lock:
            done = self._done
            errors = self.summary.errors
            elapsed = time.monotonic() - self.started
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "store": str(self.path),
            "trials_done": done,
            "trials_planned": None,
            "errors": errors,
            "elapsed_seconds": elapsed,
            "throughput_trials_per_second": done / elapsed if elapsed > 0 else 0.0,
            "eta_seconds": None,
            "regions": [],
        }


_INDEX = (
    "repro campaign telemetry\n"
    "  /metrics   Prometheus textfile exposition\n"
    "  /status    per-region tallies + Cochran half-widths (JSON)\n"
    "  /progress  trials done/planned, throughput, ETA (JSON)\n"
)


class _Handler(BaseHTTPRequestHandler):
    """One scrape request.  ``telemetry`` is bound per server class.

    Beyond the three scrape endpoints, a telemetry source may expose
    extra routes by defining ``handle_get(path) -> (body, ctype) |
    None`` and/or ``handle_post(path, body) -> (body, ctype) | None``
    (``None`` = not my route -> 404).  The distributed coordinator
    serves ``/manifest``, ``/lease`` and ``/submit`` this way while
    inheriting the scrape endpoints unchanged.
    """

    telemetry: TelemetryHub | StoreTelemetry

    def _respond(self, body: bytes, ctype: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = self.telemetry.metrics_text().encode()
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/status":
                body = (
                    json.dumps(
                        self.telemetry.status_payload(),
                        indent=2,
                        sort_keys=True,
                    )
                    + "\n"
                ).encode()
                ctype = "application/json"
            elif path == "/progress":
                body = (
                    json.dumps(
                        self.telemetry.progress_payload(),
                        indent=2,
                        sort_keys=True,
                    )
                    + "\n"
                ).encode()
                ctype = "application/json"
            elif path == "/":
                body = _INDEX.encode()
                ctype = "text/plain; charset=utf-8"
            else:
                extra = getattr(self.telemetry, "handle_get", None)
                hit = extra(path) if extra is not None else None
                if hit is None:
                    self.send_error(404, "unknown endpoint")
                    return
                body, ctype = hit
        except Exception as exc:  # render failure must not kill the thread
            self.send_error(500, str(exc) or type(exc).__name__)
            return
        self._respond(body, ctype)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        handler = getattr(self.telemetry, "handle_post", None)
        if handler is None:
            self.send_error(404, "unknown endpoint")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = self.rfile.read(length) if length else b""
            hit = handler(path, payload)
            if hit is None:
                self.send_error(404, "unknown endpoint")
                return
            body, ctype = hit
        except Exception as exc:  # handler failure must not kill the thread
            self.send_error(500, str(exc) or type(exc).__name__)
            return
        self._respond(body, ctype)

    def log_message(self, *_args) -> None:
        """Scrapes are routine; keep the campaign's stderr clean."""


class TelemetryServer:
    """A threaded HTTP server bound to one telemetry source.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` and
    :attr:`url` report the bound address.  ``start`` serves from a
    daemon thread; ``stop`` shuts the listener down and joins it.
    """

    def __init__(
        self,
        telemetry: TelemetryHub | StoreTelemetry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.telemetry = telemetry
        handler = type("BoundHandler", (_Handler,), {"telemetry": telemetry})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
