"""Progress-metric hang detection (paper section 7).

"Although determining if an execution will terminate is undecidable,
simple progress metrics (e.g., FLOPS, messages per second or loop
iterations per minute) can provide some practical detection mechanisms.
If the application's performance drops below a user-defined threshold, it
is very likely that the code is in a non-terminating mode."

The monitor consumes periodic samples of (blocks executed, messages
received, iterations completed) and reports a stall when the rate over a
sliding window drops below a fraction of the calibrated healthy rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProgressSample:
    """One heartbeat: cumulative counters at a wall-clock tick (the
    scheduler round stands in for wall time)."""

    tick: int
    blocks: int
    messages: int = 0
    iterations: int = 0


@dataclass
class ProgressMonitor:
    """Sliding-window rate watchdog over any cumulative progress metric.

    Parameters
    ----------
    window:
        Number of most recent samples the rate is computed over.
    threshold:
        Stall is declared when the windowed rate falls below
        ``threshold * calibrated_rate``.
    metric:
        Which counter to watch: ``"blocks"`` (FLOPS analogue),
        ``"messages"`` (messages/second) or ``"iterations"``.
    """

    window: int = 8
    threshold: float = 0.1
    metric: str = "blocks"
    samples: list[ProgressSample] = field(default_factory=list)
    calibrated_rate: float | None = None

    def record(self, sample: ProgressSample) -> None:
        if self.samples and sample.tick <= self.samples[-1].tick:
            raise ValueError("samples must have strictly increasing ticks")
        self.samples.append(sample)

    def _value(self, s: ProgressSample) -> int:
        return getattr(s, self.metric)

    def rate(self) -> float | None:
        """Windowed progress rate (units per tick); None until two
        samples exist."""
        if len(self.samples) < 2:
            return None
        recent = self.samples[-self.window :]
        dt = recent[-1].tick - recent[0].tick
        dv = self._value(recent[-1]) - self._value(recent[0])
        return dv / dt if dt > 0 else 0.0

    def calibrate(self) -> float:
        """Fix the healthy rate from the samples seen so far (run this at
        the end of a known-good execution or after warm-up)."""
        r = self.rate()
        if r is None:
            raise ValueError("cannot calibrate without at least two samples")
        self.calibrated_rate = r
        return r

    def stalled(self) -> bool:
        """True when the current windowed rate is below the threshold
        fraction of the calibrated rate."""
        if self.calibrated_rate is None or self.calibrated_rate <= 0:
            return False
        r = self.rate()
        return r is not None and r < self.threshold * self.calibrated_rate

    def detection_tick(self) -> int | None:
        """Earliest tick at which a stall would have been declared,
        scanning the recorded samples post hoc.  None if never."""
        if self.calibrated_rate is None or self.calibrated_rate <= 0:
            return None
        for i in range(1, len(self.samples) + 1):
            recent = self.samples[max(0, i - self.window) : i]
            if len(recent) < 2:
                continue
            dt = recent[-1].tick - recent[0].tick
            dv = self._value(recent[-1]) - self._value(recent[0])
            if dt > 0 and dv / dt < self.threshold * self.calibrated_rate:
                return recent[-1].tick
        return None
