"""Application-level message checksums (the NAMD mechanism).

Section 6.2: "we attribute NAMD's high detection rate to its built-in
message consistency checks ... An instrumentation of NAMD code shows that
these internal checks increases the execution time by three percent, but
can detect many errors."  Crucially, "NAMD's checksum only tests user
data, not headers, which can only be observed inside the MPI library" -
so header flips still crash or hang the job.

The checksum is a Fletcher-32 over the payload bytes, carried *inside*
the user payload (the first 8 bytes).  The verification cost is charged
to the rank's block clock so the overhead experiment (E6) measures a real
time penalty.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import AppAbort
from repro.observability import runtime as _obs

_TRAILER = struct.Struct("<II")  # checksum, payload length


def _fired(vm, expected: int, actual: int) -> None:
    _obs.note_detector(
        "checksum",
        rank=vm.image.rank if vm is not None else None,
        blocks=vm.clock.blocks if vm is not None else None,
        detail=f"expected 0x{expected:08x}, computed 0x{actual:08x}",
    )


class ChecksumMismatch(AppAbort):
    """Raised when a sealed payload fails verification; the application
    prints a console diagnostic and aborts (Application Detected)."""

    def __init__(self, expected: int, actual: int):
        self.expected = expected
        self.actual = actual
        super().__init__(
            "message checksum",
            f"expected 0x{expected:08x}, computed 0x{actual:08x}",
        )


def fletcher32(data: bytes | np.ndarray) -> int:
    """Fletcher-32 checksum over a byte string (vectorized).

    The classic algorithm requires modulo reduction at least every 359
    16-bit words to avoid overflow; with 64-bit accumulators and a
    blocked reduction the result is exact for any input length.
    """
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    if buf.size % 2:
        buf = np.concatenate([buf, np.zeros(1, dtype=np.uint8)])
    words = buf.view("<u2").astype(np.uint64)
    c0 = np.uint64(0)
    c1 = np.uint64(0)
    block = 65536  # safe block size for 64-bit accumulators
    for start in range(0, words.size, block):
        chunk = words[start : start + block]
        # c1 accumulates prefix sums of c0: c1 += len*c0_prev + weighted sum
        n = chunk.size
        weights = np.arange(n, 0, -1, dtype=np.uint64)
        c1 = (c1 + np.uint64(n) * c0 + np.dot(weights, chunk)) % np.uint64(65535)
        c0 = (c0 + chunk.sum()) % np.uint64(65535)
    return int((c1 << np.uint64(16)) | c0)


@dataclass(frozen=True)
class ChecksummedPayload:
    """A payload with its verification trailer split out."""

    data: bytes
    checksum: int


def seal(payload: bytes) -> bytes:
    """Prefix a payload with its Fletcher-32 trailer (what the sending
    side of a checksummed NAMD message does)."""
    return _TRAILER.pack(fletcher32(payload), len(payload)) + payload


def verify(sealed: bytes, *, vm=None) -> bytes:
    """Verify and strip the checksum trailer; raises
    :class:`ChecksumMismatch` on corruption.

    When ``vm`` is given, the verification cost is charged to its block
    clock (one block per 64 payload bytes), modelling NAMD's measured
    ~3 % runtime overhead.
    """
    if len(sealed) < _TRAILER.size:
        _fired(vm, 0, 0)
        raise ChecksumMismatch(0, 0)
    expected, length = _TRAILER.unpack_from(sealed)
    payload = sealed[_TRAILER.size :]
    if vm is not None:
        vm.clock.tick(max(1, len(payload) >> 6))
    if length != len(payload):
        actual = fletcher32(payload)
        _fired(vm, expected, actual)
        raise ChecksumMismatch(expected, actual)
    actual = fletcher32(payload)
    if actual != expected:
        _fired(vm, expected, actual)
        raise ChecksumMismatch(expected, actual)
    return payload


def checksum_cost_blocks(payload_bytes: int) -> int:
    """The block-clock cost :func:`verify` charges for a payload."""
    return max(1, payload_bytes >> 6)
