"""NaN consistency checks (paper section 6.2).

"Both NAMD and CAM include internal consistency checks for NaN (Not a
Number) for some key variables.  Both codes reported many NaN errors as a
consequence of our injecting faults into the floating-point registers.
After detecting NaN errors, both applications abort."
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import AppAbort
from repro.observability import runtime as _obs


def nan_check_value(value: float, what: str) -> float:
    """Abort if ``value`` is NaN or infinite; returns it otherwise."""
    if math.isnan(value) or math.isinf(value):
        _obs.note_detector("nan", detail=f"{what} is {value!r}")
        raise AppAbort("NaN check", f"{what} is {value!r}")
    return value


def nan_check_array(values: np.ndarray, what: str, *, vm=None) -> None:
    """Abort if any element of ``values`` is non-finite.

    When ``vm`` is given, the scan cost is charged to the block clock
    (these checks are not free; the paper notes "excessive checks can
    still harm performance").
    """
    if vm is not None:
        vm.clock.tick(max(1, values.size >> 3))
    bad = int(np.count_nonzero(~np.isfinite(values)))
    if bad:
        _obs.note_detector(
            "nan",
            rank=vm.image.rank if vm is not None else None,
            blocks=vm.clock.blocks if vm is not None else None,
            detail=f"{what}: {bad} non-finite value(s)",
        )
        raise AppAbort("NaN check", f"{what}: {bad} non-finite value(s)")
