"""Control-flow checking by software signatures (paper §8.2).

"To handle memory errors [in] the text regions of application code,
control-flow checking can monitor branches to determine if they deviate
from a pre-generated control-flow signature" (Oh, Shirvani & McCluskey).

The :class:`ControlFlowChecker` derives the allowed-successor relation of
every user text word at load time (the "pre-generated signature") and
validates each retired instruction's actual successor at runtime via the
VM's optional checker hook.  A text fault that redirects control - a
corrupted branch displacement, an opcode turned into a jump, a smashed
return address landing inside a function body - produces a transition
outside the signature and is reported as an application-detected error.
"""

from __future__ import annotations

from repro.cpu.isa import BRANCH_OPS, INSN_SIZE, Insn, Op, UndefinedOpcode, decode
from repro.cpu.vm import RET_SENTINEL
from repro.errors import AppAbort
from repro.memory.process import ProcessImage
from repro.observability import runtime as _obs


class ControlFlowViolation(AppAbort):
    """A retired instruction's successor is outside the signature."""

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst
        super().__init__(
            "control-flow check",
            f"illegal transition 0x{src:08x} -> 0x{dst:08x}",
        )


class ControlFlowChecker:
    """Pre-generated control-flow signature plus the runtime monitor.

    The signature covers *user* text only (the region the fault
    dictionary targets).  Dynamic transfers that cannot be enumerated
    statically are handled conservatively:

    * ``CALL`` must land on a known function entry;
    * ``CALLR`` (indirect) may land on any known function entry;
    * ``RET`` may return to any recorded call site's successor or to the
      top-level sentinel;
    * transitions originating outside user text are not checked.
    """

    def __init__(self, image: ProcessImage) -> None:
        self.image = image
        self._successors: dict[int, frozenset[int]] = {}
        self._entries = frozenset(
            s.addr for s in image.symtab.symbols("text", "user")
        )
        self._return_targets: set[int] = {RET_SENTINEL}
        self.checked = 0
        self.violations = 0
        self._build()

    def _build(self) -> None:
        for sym in self.image.symtab.symbols("text", "user"):
            for addr in range(sym.addr, sym.end - INSN_SIZE + 1, INSN_SIZE):
                word = self.image.text.read_bytes(addr, INSN_SIZE)
                try:
                    insn = decode(word)
                except UndefinedOpcode:
                    continue  # padding/garbage: never legally reached
                self._successors[addr] = self._static_successors(addr, insn)
                if insn.op is Op.CALL or insn.op is Op.CALLR:
                    self._return_targets.add(addr + INSN_SIZE)

    def _static_successors(self, addr: int, insn: Insn) -> frozenset[int]:
        nxt = addr + INSN_SIZE
        if insn.op in BRANCH_OPS:
            target = (nxt + insn.imm) & 0xFFFF_FFFF
            if insn.op is Op.JMP:
                return frozenset({target})
            return frozenset({nxt, target})
        if insn.op is Op.CALL:
            return frozenset({insn.imm & 0xFFFF_FFFF})
        if insn.op is Op.CALLR:
            return self._entries
        if insn.op is Op.RET:
            return frozenset()  # validated against return_targets
        return frozenset({nxt})

    # ------------------------------------------------------------------
    # runtime monitor (installed as ``vm.cf_checker``)
    # ------------------------------------------------------------------
    def check(self, src: int, insn: Insn, dst: int) -> None:
        """Validate one retired transition; raises
        :class:`ControlFlowViolation` on deviation."""
        if src not in self._successors:
            return  # outside the signed region (library/loader code)
        self.checked += 1
        if insn.op is Op.RET:
            if dst in self._return_targets:
                return
        else:
            if dst in self._successors[src]:
                return
        self.violations += 1
        _obs.note_detector(
            "cfcheck",
            rank=self.image.rank,
            blocks=self.image.clock.blocks,
            detail=f"0x{src:08x} -> 0x{dst:08x}",
        )
        raise ControlFlowViolation(src, dst)


def install(vm, image: ProcessImage | None = None) -> ControlFlowChecker:
    """Build the signature for ``vm``'s image and arm the monitor."""
    checker = ControlFlowChecker(image or vm.image)
    vm.cf_checker = checker
    return checker
