"""Application-level error detection mechanisms.

The paper's NAMD and CAM detect a fraction of injected faults through
internal machinery that this package reimplements: message checksums on
user data (NAMD, ~46 % of message faults at ~3 % overhead), NaN checks on
key variables (both codes), sanity/bound checks and assertions (both,
3-13 % of memory faults), and the progress-metric hang detector the paper
proposes in section 7.
"""

from repro.detectors.checksums import (
    fletcher32,
    ChecksummedPayload,
    ChecksumMismatch,
    seal,
    verify,
)
from repro.detectors.nan_checks import nan_check_array, nan_check_value
from repro.detectors.assertions import bound_check, sanity_assert
from repro.detectors.progress import ProgressMonitor, ProgressSample
from repro.detectors.abft import (
    AbftCoverage,
    AbftOutcome,
    AbftReport,
    checked_matmul,
    encode_columns,
    encode_rows,
    flip_float_bit,
    overhead_ratio,
    verify_and_correct,
)
from repro.detectors.cfcheck import ControlFlowChecker, ControlFlowViolation

__all__ = [
    "fletcher32",
    "ChecksummedPayload",
    "ChecksumMismatch",
    "seal",
    "verify",
    "nan_check_array",
    "nan_check_value",
    "bound_check",
    "sanity_assert",
    "ProgressMonitor",
    "ProgressSample",
    "AbftCoverage",
    "AbftOutcome",
    "AbftReport",
    "checked_matmul",
    "encode_columns",
    "encode_rows",
    "flip_float_bit",
    "overhead_ratio",
    "verify_and_correct",
    "ControlFlowChecker",
    "ControlFlowViolation",
]
