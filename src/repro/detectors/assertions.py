"""Sanity, bound and assertion checks (paper sections 6.2 and 7).

"Both NAMD and CAM use sanity/bound checks and assertions on certain data
structures to capture a fraction (3-7 percent and 4-13 percent,
respectively) of faults ...  For example, in CAM, any moisture value below
a minimum threshold can trigger a warning and abort the application."
"""

from __future__ import annotations

import numpy as np

from repro.errors import AppAbort
from repro.observability import runtime as _obs


def sanity_assert(condition: bool, what: str, detail: str = "") -> None:
    """A production assertion: abort the application when violated."""
    if not condition:
        _obs.note_detector("assertion", detail=what)
        raise AppAbort("assertion", f"{what}{': ' + detail if detail else ''}")


def bound_check(
    values: np.ndarray,
    what: str,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
    vm=None,
) -> None:
    """Abort if any element falls outside [minimum, maximum].

    This is the CAM moisture-threshold mechanism: the model warns and
    aborts when a physical field leaves its physically plausible range.
    The scan cost is charged to the block clock when ``vm`` is given.
    """
    if vm is not None:
        vm.clock.tick(max(1, values.size >> 3))
    rank = vm.image.rank if vm is not None else None
    blocks = vm.clock.blocks if vm is not None else None
    if minimum is not None:
        below = int(np.count_nonzero(values < minimum))
        if below:
            _obs.note_detector(
                "bound", rank=rank, blocks=blocks, detail=f"{what}: below minimum"
            )
            raise AppAbort(
                "bound check", f"{what}: {below} value(s) below minimum {minimum}"
            )
    if maximum is not None:
        above = int(np.count_nonzero(values > maximum))
        if above:
            _obs.note_detector(
                "bound", rank=rank, blocks=blocks, detail=f"{what}: above maximum"
            )
            raise AppAbort(
                "bound check", f"{what}: {above} value(s) above maximum {maximum}"
            )
