"""Algorithm-based fault tolerance for matrix operations (paper §8.2).

"Algorithm-based fault tolerance (ABFT) techniques exploit the
algorithmic structure of codes to create efficient, domain-specific
detection schemes.  Silva reports that ABFT can detect almost all
injected faults with only a ten percent performance penalty."

This is the Huang & Abraham checksum-matrix scheme: a matrix is encoded
with an extra checksum row (column sums) and/or checksum column (row
sums).  The product of a column-encoded A and a row-encoded B is a fully
encoded C whose checksums must remain consistent; a single corrupted
element is *located* by the intersection of the inconsistent row and
column and can be corrected in place.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.observability import runtime as _obs


class AbftOutcome(enum.Enum):
    OK = "ok"
    CORRECTED = "corrected"
    DETECTED = "detected_uncorrectable"


def encode_columns(a: np.ndarray) -> np.ndarray:
    """Append the column-sum checksum row (A becomes (m+1) x n)."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {a.shape}")
    return np.vstack([a, a.sum(axis=0)])


def encode_rows(b: np.ndarray) -> np.ndarray:
    """Append the row-sum checksum column (B becomes m x (n+1))."""
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {b.shape}")
    return np.hstack([b, b.sum(axis=1, keepdims=True)])


def checked_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply with full checksum encoding: returns the
    (m+1) x (p+1) fully encoded product of column-encoded A and
    row-encoded B."""
    return encode_columns(a) @ encode_rows(b)


@dataclass
class AbftReport:
    outcome: AbftOutcome
    #: data-part location of the corrected element, if any.
    location: tuple[int, int] | None = None
    #: magnitude of the checksum discrepancy that triggered action.
    residual: float = 0.0


def verify_and_correct(
    c_full: np.ndarray, *, tolerance: float = 1e-9
) -> tuple[np.ndarray, AbftReport]:
    """Validate a fully encoded product; correct a single corrupted
    element in place if one is localized.

    Returns ``(data_part, report)`` where ``data_part`` is the corrected
    m x p block.  Corruption of checksum entries themselves is detected
    (one inconsistent row *or* column, not both) and the data part is
    returned unchanged.
    """
    c = np.array(c_full, dtype=np.float64)
    m, p = c.shape[0] - 1, c.shape[1] - 1
    if m < 1 or p < 1:
        raise ValueError(f"encoded matrix too small: {c.shape}")
    scale = max(1.0, float(np.abs(c).max()))
    row_resid = c[:m, :p].sum(axis=1) - c[:m, p]  # per data row
    col_resid = c[:m, :p].sum(axis=0) - c[m, :p]  # per data column
    bad_rows = np.nonzero(np.abs(row_resid) > tolerance * scale)[0]
    bad_cols = np.nonzero(np.abs(col_resid) > tolerance * scale)[0]

    if bad_rows.size == 0 and bad_cols.size == 0:
        return c[:m, :p], AbftReport(AbftOutcome.OK)
    if bad_rows.size == 1 and bad_cols.size == 1:
        i, j = int(bad_rows[0]), int(bad_cols[0])
        delta = float(row_resid[i])
        # Cross-check: the column residual must agree, else the damage
        # is wider than one element.  The comparison is relative because
        # the corrupted value may dominate both residuals.
        col_delta = float(col_resid[j])
        agree = abs(delta - col_delta) <= tolerance * max(
            scale, abs(delta), abs(col_delta)
        )
        if agree:
            # Recompute the element from its row checksum and the *other*
            # row entries: summing around the corrupted value avoids the
            # catastrophic absorption a huge upset would cause in any
            # expression that touches it.
            others = float(np.delete(c[i, :p], j).sum())
            c[i, j] = c[i, p] - others
            _obs.note_detector(
                "abft", corrected=True, detail=f"element ({i}, {j})"
            )
            return c[:m, :p], AbftReport(
                AbftOutcome.CORRECTED, location=(i, j), residual=delta
            )
        _obs.note_detector("abft", detail="uncorrectable")
        return c[:m, :p], AbftReport(AbftOutcome.DETECTED, residual=delta)
    # A single inconsistent row (or column) alone means a corrupted
    # checksum entry or multi-element damage: flagged, not corrected.
    residual = float(
        max(
            np.abs(row_resid).max() if bad_rows.size else 0.0,
            np.abs(col_resid).max() if bad_cols.size else 0.0,
        )
    )
    _obs.note_detector("abft", detail="checksum entry or multi-element")
    return c[:m, :p], AbftReport(AbftOutcome.DETECTED, residual=residual)


@dataclass
class AbftCoverage:
    trials: int = 0
    benign: int = 0  # upset below numerical significance: data still right
    corrected: int = 0
    detected: int = 0
    escaped: int = 0  # wrong data passed as OK
    false_alarms: int = 0

    @property
    def coverage(self) -> float:
        handled = self.benign + self.corrected + self.detected
        return handled / self.trials if self.trials else 1.0


def flip_float_bit(value: float, bit: int) -> float:
    """Single-bit upset on an IEEE-754 double."""
    if not 0 <= bit < 64:
        raise ValueError(f"bit must be in [0, 64): {bit}")
    (raw,) = np.frombuffer(np.float64(value).tobytes(), dtype=np.uint64)
    return float(np.uint64(raw ^ np.uint64(1 << bit)).view(np.float64))


def coverage_experiment(
    n_trials: int,
    size: int,
    rng: np.random.Generator,
    *,
    tolerance: float = 1e-9,
) -> AbftCoverage:
    """Inject one element upset per encoded product and score ABFT.

    Flips in the low mantissa bits fall below the detection tolerance
    but are also numerically harmless; 'escaped' counts only upsets that
    left the data part wrong beyond the tolerance."""
    stats = AbftCoverage()
    for _ in range(n_trials):
        stats.trials += 1
        a = rng.standard_normal((size, size))
        b = rng.standard_normal((size, size))
        c_full = checked_matmul(a, b)
        truth = c_full[:size, :size].copy()
        i = int(rng.integers(size + 1))
        j = int(rng.integers(size + 1))
        bit = int(rng.integers(64))
        corrupted = c_full.copy()
        corrupted[i, j] = flip_float_bit(corrupted[i, j], bit)
        data, report = verify_and_correct(corrupted, tolerance=tolerance)
        # Score against the same numerical-significance scale the
        # detector uses (the full encoded matrix).
        scale = max(1.0, float(np.abs(c_full).max()))
        wrong = bool(np.abs(data - truth).max() > tolerance * scale)
        if report.outcome is AbftOutcome.OK:
            if wrong:
                stats.escaped += 1
            else:
                stats.benign += 1
        elif report.outcome is AbftOutcome.CORRECTED:
            if wrong:
                stats.escaped += 1
            else:
                stats.corrected += 1
        else:
            stats.detected += 1
    return stats


def overhead_ratio(size: int) -> float:
    """Extra multiply-adds of the encoded product relative to the plain
    one: ((n+1)^2 - n^2) / n^2 ~ 2/n - Silva's ~10% at n ~ 20."""
    if size < 1:
        raise ValueError(f"size must be positive: {size}")
    return ((size + 1) ** 2 - size**2) / size**2
