"""Disabled-instrumentation overhead bound (observability contract).

``repro.observability.runtime`` promises that when no sinks are
installed, every instrumentation site reduces to a module-global
``is None`` check at *event* granularity (a kernel call, a packet, a
bit flip) - never per instruction.  There is no uninstrumented build to
diff against, so the 5% bound is established constructively:

1. run a fault-free job with observability disabled and time it;
2. run the same job fully observed to count how many instrumentation
   events it reaches (each reached event is one executed guard);
3. micro-benchmark the guard expression itself;
4. assert guards-reached x guard-cost stays far below 5% of the job
   runtime.

A wall-clock A/B of the same binary (disabled vs disabled) would only
measure noise; this bounds the thing the contract actually promises.
"""

import time
import timeit

from repro.injection.campaign import Campaign
from repro.mpi.simulator import Job
from repro.observability import runtime
from repro.observability.metrics import MetricsRegistry
from repro.observability.timeline import PropagationTimeline
from repro.observability.tracer import Tracer

#: Small-but-real wavetoy: enough steps for thousands of channel and
#: kernel events, small enough for CI.
PARAMS = dict(nx=32, ny=8, steps=6, cold_heap_factor=3, output_stride=1)
NPROCS = 4

#: Worst-case distinct module-global guards at one instrumentation site
#: (tracer, metrics, timeline).
GUARDS_PER_EVENT = 3


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _guard_cost_seconds():
    loops = 200_000
    total = timeit.timeit(
        "runtime.TRACER is None"
        " and runtime.METRICS is None"
        " and runtime.TIMELINE is None",
        globals={"runtime": runtime},
        number=loops,
    )
    return total / loops


def test_disabled_observability_overhead_under_5_percent(capsys):
    campaign = Campaign.from_registry(
        "wavetoy", nprocs=NPROCS, app_params=PARAMS, seed=20040607
    )
    runtime.disable()

    def fault_free():
        job = Job(campaign.app_factory(), campaign.config)
        result = job.run()
        assert result.completed
        return result

    fault_free()  # warm caches before timing
    job_seconds = _best_of(fault_free)

    # Count the instrumentation events one job actually reaches.
    tracer = Tracer(max_events=1_000_000)
    with runtime.activate(
        tracer=tracer,
        metrics=MetricsRegistry(),
        timeline=PropagationTimeline(),
    ):
        fault_free()
    events_reached = len(tracer.events) + tracer.dropped
    assert events_reached > 0, "observed job emitted no events"
    assert tracer.dropped == 0

    guard_seconds = _guard_cost_seconds()
    disabled_cost = events_reached * GUARDS_PER_EVENT * guard_seconds
    overhead = disabled_cost / job_seconds

    with capsys.disabled():
        print(
            f"\n=== observability disabled-path overhead ===\n"
            f"job runtime (best of 3): {job_seconds * 1e3:.1f} ms\n"
            f"instrumentation events reached: {events_reached}\n"
            f"guard cost: {guard_seconds * 1e9:.1f} ns "
            f"x {GUARDS_PER_EVENT} guards/event\n"
            f"implied disabled overhead: {100 * overhead:.3f}% (bound: 5%)"
        )
    assert overhead < 0.05


def test_event_volume_scales_with_communication_not_blocks():
    """The guard bound above only holds if sites fire at event
    granularity; a per-instruction site would blow it up quietly."""
    campaign = Campaign.from_registry(
        "wavetoy", nprocs=NPROCS, app_params=PARAMS, seed=20040607
    )
    tracer = Tracer(max_events=1_000_000)
    with runtime.activate(tracer=tracer):
        job = Job(campaign.app_factory(), campaign.config)
        result = job.run()
        assert result.completed
    instructions = sum(vm.instructions_retired for vm in job.vms)
    # This communication-heavy toy config retires only ~30 instructions
    # per traced event; a per-instruction site would push the ratio to
    # 1 or above.
    assert len(tracer.events) < instructions / 10
