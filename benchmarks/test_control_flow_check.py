"""E11 (extension): control-flow signature checking of text faults."""


def test_control_flow_check(run_experiment):
    metrics = run_experiment("E11", 60)
    # CFC must convert some outcomes into explicit detections without
    # introducing false alarms on the clean control flow.
    assert metrics["detected"] > 0
    assert metrics["silent_checked"] <= metrics["silent_unchecked"]
