"""E10 (extension): ABFT checksum-matrix coverage and overhead."""


def test_abft(run_experiment):
    metrics = run_experiment("E10", 150)
    # "ABFT can detect almost all injected faults with only a ten
    # percent performance penalty" (Silva, cited in section 8.2).
    assert metrics["coverage"] > 0.98
    assert metrics["escaped"] == 0
    assert 0.08 < metrics["overhead_n20"] < 0.12
