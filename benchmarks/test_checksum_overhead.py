"""E6: NAMD message-checksum runtime overhead (paper: ~3%)."""


def test_checksum_overhead(run_experiment):
    metrics = run_experiment("E6")
    assert 0.0 < metrics["overhead_percent"] < 12.0
