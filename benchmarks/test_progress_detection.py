"""E8: progress-metric hang detection (section 7)."""


def test_progress_detection(run_experiment):
    metrics = run_experiment("E8")
    assert metrics["detected_at"] is not None
    # Detection within one monitoring window of the stall.
    assert metrics["latency"] <= 8
