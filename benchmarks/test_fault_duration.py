"""E13 (extension): transient vs stuck-at fault duration."""


def test_fault_duration(run_experiment):
    metrics = run_experiment("E13", 16)
    # Persistent faults defeat overwrite-before-read masking: they must
    # manifest at least as often as the identical transient targets.
    stuck = max(metrics["stuck0_rate"], metrics["stuck1_rate"])
    assert stuck >= metrics["transient_rate"]
