"""E7: register liveness vs optimization level (Springer [23])."""


def test_register_liveness_ablation(run_experiment):
    metrics = run_experiment("E7")
    # The optimized kernel keeps more registers live...
    assert metrics["static_optimized"] >= 4
    # ...and is more sensitive to register faults than the spill-happy
    # unoptimized variant (the paper's robustness-vs-performance point).
    assert (
        metrics["sensitivity_optimized"]
        > metrics["sensitivity_unoptimized"]
    )
