"""Table 2: fault injection results for Cactus Wavetoy.

Shape targets from the paper: regular registers most sensitive
(62.8%), FP registers low (4.0%), memory regions low (< ~15%),
messages very low (3.1%) thanks to text-output masking, and **no**
Application/MPI-Detected outcomes for Wavetoy's register and memory
rows (it has no internal checks).
"""

from benchmarks.conftest import BENCH_CAMPAIGN_N


def test_table2_wavetoy(run_experiment):
    metrics = run_experiment("T2", BENCH_CAMPAIGN_N)
    reg = metrics["regular_reg"]["error_rate_percent"]
    fp = metrics["fp_reg"]["error_rate_percent"]
    msg = metrics["message"]["error_rate_percent"]
    # Who wins: integer registers dominate every other region.
    assert reg > 25.0
    assert reg > fp
    assert reg > metrics["text"]["error_rate_percent"]
    assert reg > metrics["heap"]["error_rate_percent"]
    # FP registers are far less sensitive than integer registers.
    assert fp < reg / 2
    # Memory regions stay low (paper: 2.4-12.7%).
    for region in ("data", "bss", "heap", "text"):
        assert metrics[region]["error_rate_percent"] <= 30.0, region
    # Messages: masked by the plain-text output and the mostly-dead
    # halo payload (paper: 3.1%; the miniature grid leaves a larger
    # visible fraction, but messages stay well below the register rate).
    assert msg <= reg
    assert msg < 45.0
    # Wavetoy has no internal checks: nothing can be App Detected.
    for region, row in metrics.items():
        assert row["app_detected"] == 0.0, region
