"""Section 6.1.2 ablation: working sets explain the static-region error
rates ("the small working set size is the cause of the low error
rates").
"""

from benchmarks.conftest import BENCH_CAMPAIGN_N


def test_working_set_explains_error_rates(benchmark, capsys):
    from repro.analysis.correlation import correlate_working_set
    from repro.apps import WavetoyApp
    from repro.injection.campaign import Campaign
    from repro.injection.faults import Region
    from repro.mpi.simulator import JobConfig
    from repro.sampling.plans import CampaignPlan
    from repro.trace.working_set import trace_memory

    def run():
        cfg = JobConfig(nprocs=8)
        report = trace_memory(WavetoyApp(), cfg)
        campaign = Campaign(
            WavetoyApp,
            cfg,
            plan=CampaignPlan(
                per_region={r.value: BENCH_CAMPAIGN_N for r in Region}
            ),
            seed=612,
        )
        result = campaign.run(
            regions=(Region.TEXT, Region.DATA, Region.BSS, Region.HEAP)
        )
        return correlate_working_set(report, result)

    correlation = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== working-set / error-rate correlation (section 6.1.2) ===")
        print(correlation.text)
    # Error rates bounded by (same order as) the compute-phase working
    # set: faults outside the working set cannot manifest.
    assert correlation.consistent
