"""Table 3: fault injection results for NAMD (moldyn).

Shape targets: message faults are frequent (38%) and heavily detected
by the built-in checksums (46% App Detected); FP faults are caught by
NaN checks; crashes dominate register faults.
"""

from benchmarks.conftest import BENCH_CAMPAIGN_N


def test_table3_moldyn(run_experiment):
    metrics = run_experiment("T3", BENCH_CAMPAIGN_N)
    msg = metrics["message"]
    # Messages are much more sensitive than for wavetoy (38% vs 3.1%).
    assert msg["error_rate_percent"] > 15.0
    # The checksums catch a large share of manifested message faults.
    assert msg["app_detected"] > 20.0
    # Registers dominate memory regions, as everywhere.
    assert (
        metrics["regular_reg"]["error_rate_percent"]
        > metrics["heap"]["error_rate_percent"]
    )
    assert metrics["regular_reg"]["error_rate_percent"] > 25.0
    # Memory regions stay low.
    for region in ("data", "bss"):
        assert metrics[region]["error_rate_percent"] <= 30.0, region
