"""Table 7: CAM (climate) working-set curves.

Paper: text ~30% initial, ~13% compute; Data+BSS+Heap 19% -> 16%.
"""


def test_table7_climate_working_set(run_experiment):
    metrics = run_experiment("T7")
    assert metrics["nonincreasing"]
    assert metrics["text_initial"] > metrics["text_compute"]
    assert metrics["text_compute"] < 40.0
    assert metrics["dbh_compute"] < 60.0
