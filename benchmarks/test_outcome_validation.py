"""Static outcome-prediction validation benchmark (experiment E18).

Acceptance for the outcome predictor, from the issue that introduced
it: on at least two applications the statically predicted crash-prone
and hang-prone strata must show dynamic crash/hang rates at least 3x
the app-wide base rate, and the masked stratum must keep the masking
oracle's precision 1.0.  This run scores all three suite applications
and prints the full confusion matrices (the E18 tables).
"""

from __future__ import annotations

import os

import pytest

from repro.staticanalysis.outcomes import validate_suite
from repro.staticanalysis.outcomes.validation import (
    ENRICHMENT_FLOOR,
    MASKED_PRECISION_FLOOR,
)

APPS = ("wavetoy", "moldyn", "climate")
PER_STRATUM = int(os.environ.get("REPRO_CAMPAIGN_N", "12"))


@pytest.mark.slow
def test_predicted_strata_match_dynamic_outcomes(benchmark, capsys):
    validations = benchmark.pedantic(
        validate_suite, args=(APPS,),
        kwargs={"per_stratum": PER_STRATUM},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        for v in validations:
            print()
            print(v.render())

    benchmark.extra_info["per_stratum"] = PER_STRATUM
    for v in validations:
        benchmark.extra_info[f"masked_precision_{v.app}"] = v.masked_precision
        benchmark.extra_info[f"crash_enrichment_{v.app}"] = v.crash_enrichment
        benchmark.extra_info[f"hang_enrichment_{v.app}"] = v.hang_enrichment
        assert v.masked_precision >= MASKED_PRECISION_FLOOR, v.app
        assert v.passed, v.app

    # the issue's floor asks for >= 2 apps with enriched strata; the
    # suite delivers all three
    enriched = [
        v
        for v in validations
        if v.crash_enrichment >= ENRICHMENT_FLOOR
        and v.hang_enrichment >= ENRICHMENT_FLOOR
    ]
    assert len(enriched) >= 2, [v.app for v in validations]
