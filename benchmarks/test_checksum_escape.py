"""E3: Stone & Partridge checksum escape analysis."""


def test_checksum_escape(run_experiment):
    metrics = run_experiment("E3", 1500)
    # Random wire corruption essentially never escapes CRC-32.
    assert metrics["wire_crc_escape"] == 0.0
    # Host-side corruption blinds the CRC entirely; only the 16-bit
    # checksum remains - and paired flips in the same bit column of two
    # words cancel in a ones'-complement sum, so the escape rate is
    # orders of magnitude above the CRC's 2^-32 (Stone & Partridge's
    # "1 out of 1,100 to 32,000").
    assert 0.0 < metrics["host_tcp_escape"] < 0.06
    assert metrics["host_tcp_escape"] > metrics["wire_crc_escape"]
