"""Table 5: Wavetoy working-set curves.

Paper: text working set ~30% at t=0 dropping to ~10% in the compute
phase; Data+BSS+Heap ~28% dropping to ~12%.
"""


def test_table5_wavetoy_working_set(run_experiment):
    metrics = run_experiment("T5")
    assert metrics["nonincreasing"]
    assert metrics["text_initial"] > metrics["text_compute"]
    assert metrics["text_compute"] < 40.0  # small compute-phase footprint
    assert metrics["dbh_compute"] < 60.0
    assert metrics["dbh_initial"] >= metrics["dbh_compute"]
