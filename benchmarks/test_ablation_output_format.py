"""E9 (ablation): text vs binary output under identical message faults.

Section 6.2: "A binary output format would detect more cases of
incorrect output."
"""


def test_output_format_ablation(run_experiment):
    metrics = run_experiment("E9", 30)
    assert metrics["binary_rate"] > metrics["text_rate"]
