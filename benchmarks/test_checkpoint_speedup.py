"""Checkpointed-campaign speedup benchmark.

Acceptance for the checkpoint subsystem: a late-injection campaign
(stack/heap faults delivered in the last quartile of the golden run,
the regime Lu & Reed's working-set campaigns spend most of their budget
in) must finish at least 3x faster with golden-prefix replay than with
the plain interpreter, while producing bit-identical results.  The
one-off golden recording is charged to the checkpointed side, so the
bar includes every cost a real campaign would pay.
"""

from __future__ import annotations

import dataclasses
import os
import time

import pytest

from repro.apps import WavetoyApp
from repro.engine.checkpoint import default_store
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.mpi.simulator import JobConfig
from repro.sampling.plans import CampaignPlan

N_PER_REGION = 20
STRIDE = 16
REGIONS = (Region.STACK, Region.HEAP)
MIN_SPEEDUP = 3.0
NPROCS = 4

PARAMS = dict(nx=32, ny=8, steps=6, cold_heap_factor=3, output_stride=1)


def make_campaign():
    return Campaign(
        WavetoyApp,
        JobConfig(nprocs=NPROCS),
        plan=CampaignPlan(per_region={r.value: N_PER_REGION for r in Region}),
        seed=5,
        app_params=PARAMS,
    )


def late_specs(eng, blocks_per_rank):
    """The sampled campaign specs, with delivery times remapped into the
    last quartile of the target rank's golden block budget."""
    specs = []
    for region in REGIONS:
        for index in range(N_PER_REGION):
            spec = eng.make_spec(region, index)
            budget = blocks_per_rank[spec.fault.rank]
            lo = (3 * budget) // 4
            span = max(1, budget - 1 - lo)
            fault = dataclasses.replace(
                spec.fault, time_blocks=lo + spec.fault.time_blocks % span
            )
            specs.append(dataclasses.replace(spec, fault=fault))
    return specs


def fingerprint(results):
    return [(r.key, r.manifestation, r.delivered, r.latency_blocks) for r in results]


@pytest.mark.slow
@pytest.mark.skipif(os.cpu_count() < 2, reason="needs >= 2 cores")
def test_late_injection_speedup(benchmark):
    campaign = make_campaign()
    reference = campaign.reference()  # profile outside both timed sections
    with campaign.engine() as eng:
        specs = late_specs(eng, reference.blocks_per_rank)

    t0 = time.perf_counter()
    with make_campaign().engine() as eng:
        plain = eng.run_trials(specs)
    plain_s = time.perf_counter() - t0

    # Charge the recording to the checkpointed side.
    default_store().clear()
    timings = {}

    def checkpointed_run():
        t = time.perf_counter()
        with make_campaign().engine(checkpoint_stride=STRIDE) as eng:
            results = eng.run_trials(specs)
        timings["checkpointed"] = time.perf_counter() - t
        return results

    checkpointed = benchmark.pedantic(checkpointed_run, rounds=1, iterations=1)
    checkpointed_s = timings["checkpointed"]

    assert fingerprint(checkpointed) == fingerprint(plain)

    speedup = plain_s / checkpointed_s if checkpointed_s else float("inf")
    benchmark.extra_info["regions"] = ",".join(r.value for r in REGIONS)
    benchmark.extra_info["n_per_region"] = N_PER_REGION
    benchmark.extra_info["stride"] = STRIDE
    benchmark.extra_info["plain_seconds"] = plain_s
    benchmark.extra_info["checkpointed_seconds"] = checkpointed_s
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\nlate-injection campaign: plain {plain_s:.2f}s, "
        f"checkpointed(stride={STRIDE}) {checkpointed_s:.2f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP
