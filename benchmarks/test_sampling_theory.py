"""E4: sampling-theory campaign sizing."""


def test_sampling_theory(run_experiment):
    metrics = run_experiment("E4")
    # Paper: 400-500 injections -> d = 4.4-4.9% at 95% confidence.
    assert 0.048 < metrics["d400"] < 0.050
    assert 0.043 < metrics["d500"] < 0.045
    assert metrics["space"] == 3_932_160
    assert 380 <= metrics["n5"] <= 390
