"""Static AVF vs dynamic injection: rank correlation acceptance.

The static analyser predicts per-register fault sensitivity without
running a single injection.  This bench runs the dynamic register
campaign over the section-6.1.1 ablation kernels and checks that the
static ranking agrees (Spearman rho >= 0.6) - the validation that makes
the AVF numbers in ``python -m repro analyze`` trustworthy.
"""

from benchmarks.conftest import BENCH_CAMPAIGN_N
from repro.staticanalysis.validation import validate


def test_static_avf_correlation(benchmark, capsys):
    trials = max(BENCH_CAMPAIGN_N, 25)
    report = benchmark.pedantic(
        validate, kwargs={"trials": trials}, rounds=1, iterations=1
    )
    benchmark.extra_info["spearman_rho"] = report.rank_correlation
    benchmark.extra_info["points"] = len(report.static_scores)
    with capsys.disabled():
        print("\n=== Static AVF vs dynamic injection ===")
        print(report.text)
    assert report.liveness_agrees
    assert report.rank_correlation >= 0.6
