"""Engine scaling benchmark: parallel campaign throughput vs serial.

Acceptance for the campaign engine: at ``REPRO_CAMPAIGN_N=25`` a
``jobs=4`` region campaign must (a) produce manifestation tallies
bit-identical to the serial driver and (b) finish at least 2x faster in
wall-clock time on a machine with >= 4 cores (trials are embarrassingly
parallel; the only serial work is fault sampling and aggregation).

The speedup assertion is skipped on machines without enough cores - the
determinism assertion is not.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import BENCH_CAMPAIGN_N
from repro.apps import WavetoyApp
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.mpi.simulator import JobConfig
from repro.sampling.plans import CampaignPlan

JOBS = 4

#: Region used for the throughput measurement: register faults exercise
#: the full ptrace-analogue injection path with mid-run delivery.
SCALING_REGION = Region.REGULAR_REG

#: All eight regions, exercised at a small n for the determinism check.
DETERMINISM_N = 4


def make_campaign(n):
    return Campaign(
        WavetoyApp,
        JobConfig(nprocs=8),
        plan=CampaignPlan(per_region={r.value: n for r in Region}),
    )


def tallies(result):
    return {
        region: (row.tally.counts, row.delivered)
        for region, row in result.regions.items()
    }


@pytest.mark.slow
def test_parallel_speedup(benchmark):
    n = BENCH_CAMPAIGN_N
    serial_campaign = make_campaign(n)
    serial_campaign.reference()  # profile outside the timed section
    t0 = time.perf_counter()
    serial = serial_campaign.run_region(SCALING_REGION, n, keep_records=False)
    serial_s = time.perf_counter() - t0

    parallel_campaign = make_campaign(n)
    parallel_campaign.reference()

    timings = {}

    def parallel_run():
        t = time.perf_counter()
        result = parallel_campaign.run_region(SCALING_REGION, n, jobs=JOBS)
        timings["parallel"] = time.perf_counter() - t
        return result

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = timings["parallel"]

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    benchmark.extra_info["region"] = SCALING_REGION.value
    benchmark.extra_info["n"] = n
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["serial_seconds"] = serial_s
    benchmark.extra_info["parallel_seconds"] = parallel_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    print(
        f"\nengine scaling ({SCALING_REGION.value}, n={n}): serial "
        f"{serial_s:.1f}s vs jobs={JOBS} {parallel_s:.1f}s -> "
        f"{speedup:.2f}x on {os.cpu_count()} cores"
    )

    assert serial.tally.counts == parallel.tally.counts
    assert serial.delivered == parallel.delivered
    if (os.cpu_count() or 1) < JOBS:
        pytest.skip(
            f"speedup assertion needs >= {JOBS} cores, have {os.cpu_count()}"
        )
    assert speedup >= 2.0, (
        f"jobs={JOBS} speedup {speedup:.2f}x below the 2x acceptance bar"
    )


@pytest.mark.slow
def test_eight_region_parallel_determinism(benchmark):
    """A wavetoy campaign over all eight regions at jobs=4 produces
    per-region manifestation tallies identical to the serial driver."""
    serial = make_campaign(DETERMINISM_N).run(n=DETERMINISM_N)

    def parallel_run():
        return make_campaign(DETERMINISM_N).run(n=DETERMINISM_N, jobs=JOBS)

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["n_per_region"] = DETERMINISM_N
    assert tallies(serial) == tallies(parallel)
