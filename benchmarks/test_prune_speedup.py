"""Provably-masked pruning benchmark.

Acceptance for ``campaign run --prune-masked``: on the static regions
(text, data, bss - where cold padding, cold tables, and benign encoding
bits dominate) the pruned campaign must execute at least 1.5x fewer
trials than the full campaign while reporting region error rates within
the full run's Cochran half-width.  Trial counts, not wall-clock, are
the metric: the saving is real skipped executions, independent of
machine speed.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.driver import observed_half_width
from repro.injection.campaign import Campaign
from repro.injection.faults import Region

APP = "wavetoy"
NPROCS = 2
SEED = 2004
REGIONS = (Region.TEXT, Region.DATA, Region.BSS)
N_PER_REGION = int(os.environ.get("REPRO_CAMPAIGN_N", "25"))
MIN_TRIAL_REDUCTION = 1.5


def make_campaign():
    return Campaign.from_registry(APP, nprocs=NPROCS, seed=SEED)


@pytest.mark.slow
def test_pruned_campaign_executes_fewer_trials(benchmark):
    full = make_campaign().run(REGIONS, N_PER_REGION)

    pruned = benchmark.pedantic(
        lambda: make_campaign().run(REGIONS, N_PER_REGION, prune_masked=True),
        rounds=1,
        iterations=1,
    )

    total = sum(pruned.row(r).executions for r in REGIONS)
    executed = sum(pruned.row(r).executed for r in REGIONS)
    reduction = total / executed if executed else float("inf")

    lines = []
    for region in REGIONS:
        f_row, p_row = full.row(region), pruned.row(region)
        assert f_row.executions == p_row.executions == N_PER_REGION
        d = observed_half_width(f_row.tally.errors, f_row.executions)
        gap = abs(f_row.error_rate_percent - p_row.error_rate_percent) / 100.0
        assert gap <= d, region.value
        lines.append(
            f"{region.value:>6}: {p_row.executed}/{p_row.executions} executed, "
            f"{p_row.pruned} pruned, rate {p_row.error_rate_percent:.1f}% "
            f"(full {f_row.error_rate_percent:.1f}%, d={100 * d:.1f}%)"
        )

    benchmark.extra_info["n_per_region"] = N_PER_REGION
    benchmark.extra_info["trials_total"] = total
    benchmark.extra_info["trials_executed"] = executed
    benchmark.extra_info["trial_reduction"] = reduction
    print("\npruned campaign (" + APP + "):")
    print("\n".join(lines))
    print(f"trial reduction {reduction:.1f}x (floor {MIN_TRIAL_REDUCTION}x)")
    assert reduction >= MIN_TRIAL_REDUCTION
