"""Static-propagation validation benchmark (experiment E17).

Acceptance for the propagation analyzer: its predictions must agree
with dynamic campaign outcomes.  Two bars, both from the issue that
introduced the analyzer:

* **masked precision** - of the trials the masking oracle calls
  provably masked, at least 95% must actually come back CORRECT when
  executed, on every shipped application;
* **rank correlation** - across (app, region) cells, the statically
  predicted exposure fraction must rank-order the observed error rates
  with Spearman rho >= 0.6.

The oracle is designed to be *sound* (precision 1.0); the 0.95 floor
leaves room for timing-dependent manifestations without letting the
oracle drift into guessing.
"""

from __future__ import annotations

import os

import pytest

from repro.staticanalysis.propagation.validation import (
    MASKED_PRECISION_FLOOR,
    RANK_CORRELATION_FLOOR,
    validate_suite,
)

APPS = ("wavetoy", "moldyn", "climate")
N_PER_CELL = int(os.environ.get("REPRO_CAMPAIGN_N", "40"))


@pytest.mark.slow
def test_static_predictions_match_dynamic_outcomes(benchmark, capsys):
    report = benchmark.pedantic(
        validate_suite, args=(APPS,), kwargs={"n": N_PER_CELL},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(report.render())

    benchmark.extra_info["n_per_cell"] = N_PER_CELL
    benchmark.extra_info["rank_correlation"] = report.rank_correlation
    for app in APPS:
        precision = report.app_precision(app)
        benchmark.extra_info[f"masked_precision_{app}"] = precision
        assert precision >= MASKED_PRECISION_FLOOR, app
    assert report.rank_correlation >= RANK_CORRELATION_FLOOR
    assert report.passed
