"""Table 6: NAMD (moldyn) working-set curves.

Paper: text ~15% initial, ~8% compute; Data+BSS+Heap 60% -> 22%.
"""


def test_table6_moldyn_working_set(run_experiment):
    metrics = run_experiment("T6")
    assert metrics["nonincreasing"]
    assert metrics["text_initial"] > metrics["text_compute"]
    assert metrics["text_compute"] < 40.0
    assert metrics["dbh_initial"] >= metrics["dbh_compute"]
