"""Live telemetry serving overhead bound (observability contract).

``campaign run --serve`` must not slow the campaign down.  Attaching a
hub engages the same per-trial metrics collection ``--metrics`` does
(whose cost is bounded by ``test_observability_overhead``); *serving*
then adds only a summary fold under the hub lock per trial, with
scrapes rendering outside that lock from a snapshot copy.  This bench
isolates the serving increment: the same metrics-collecting campaign
runs unserved and served (scraper thread sweeping all three endpoints)
in interleaved pairs - so CPU-frequency ramps and container-quota
epochs hit both sides alike - and the best served wall time must stay
within 5% of the best unserved wall time.
"""

import threading
import time
import urllib.request

from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.observability.metrics import MetricsRegistry
from repro.observability.serve import TelemetryHub, TelemetryServer

#: Same small-but-real wavetoy as the disabled-path bench: long enough
#: to amortize process startup, short enough for CI.
PARAMS = dict(nx=32, ny=8, steps=6, cold_heap_factor=3, output_stride=1)
NPROCS = 4
SEED = 20040607

#: Trials per region; two regions per run.
N = 12

#: Interleaved measurement rounds (one unserved + one served run each).
ROUNDS = 5

#: Untimed runs before measuring: the first seconds on a cold or
#: quota-throttled machine run up to 20% slow, on both sides.
WARMUP_RUNS = 3

#: Pause between scrape sweeps.  Still ~60x harsher than a stock
#: Prometheus scrape interval (seconds to minutes); pushing much below
#: this measures GIL handoff jitter, not serving cost.
SCRAPE_PERIOD = 0.25

OVERHEAD_BOUND = 0.05


def _campaign():
    return Campaign.from_registry(
        "wavetoy", nprocs=NPROCS, app_params=PARAMS, seed=SEED
    )


def _run_regions(engine):
    engine.run_region(Region.STACK, N)
    engine.run_region(Region.HEAP, N)


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _unserved_run():
    with _campaign().engine(metrics=MetricsRegistry()) as eng:
        _run_regions(eng)


class _Scraper:
    """Sweeps /metrics, /status and /progress while armed.

    The thread lives for the whole bench; server startup/teardown and
    thread creation stay outside every timed region (the bound is on
    the *campaign*, and ``TelemetryServer.stop`` otherwise charges the
    stdlib ``shutdown()`` poll interval - up to 500ms - to the run).
    """

    def __init__(self, url):
        self.url = url
        self.armed = threading.Event()
        self.stopped = threading.Event()
        self.sweeps = 0
        self.thread = threading.Thread(target=self._loop)
        self.thread.start()

    def _loop(self):
        while not self.stopped.is_set():
            if not self.armed.wait(timeout=0.05):
                continue
            for endpoint in ("/metrics", "/status", "/progress"):
                urllib.request.urlopen(self.url + endpoint, timeout=10).read()
            self.sweeps += 1
            self.stopped.wait(SCRAPE_PERIOD)

    def stop(self):
        self.stopped.set()
        self.thread.join()


def test_served_campaign_overhead_under_5_percent(capsys):
    hub = TelemetryHub()
    unserved_times, served_times = [], []
    with TelemetryServer(hub) as srv:
        scraper = _Scraper(srv.url)
        try:

            def served_run():
                with _campaign().engine(telemetry=hub) as eng:
                    _run_regions(eng)

            for _ in range(WARMUP_RUNS):
                _unserved_run()
            for _ in range(ROUNDS):
                unserved_times.append(_timed(_unserved_run))
                scraper.armed.set()
                served_times.append(_timed(served_run))
                scraper.armed.clear()
        finally:
            scraper.stop()
    assert scraper.sweeps > 0, "scraper never completed a sweep"

    unserved, served = min(unserved_times), min(served_times)
    overhead = served / unserved - 1.0
    with capsys.disabled():
        print(
            f"\n=== live telemetry serving overhead ===\n"
            f"unserved (best of {ROUNDS}): {unserved * 1e3:.1f} ms\n"
            f"served + scraped every {SCRAPE_PERIOD * 1e3:.0f} ms "
            f"(best of {ROUNDS}): {served * 1e3:.1f} ms\n"
            f"scrape sweeps completed: {scraper.sweeps}\n"
            f"overhead: {100 * overhead:+.2f}% (bound: "
            f"{100 * OVERHEAD_BOUND:.0f}%)"
        )
    assert overhead < OVERHEAD_BOUND
