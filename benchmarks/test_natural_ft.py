"""E12 (extension): naturally fault-tolerant iterative algorithms."""


def test_natural_fault_tolerance(run_experiment):
    metrics = run_experiment("E12")
    # "A small error or lost data only slow convergence rather than
    # leading to wrong results" - while a direct method is silently wrong.
    assert metrics["self_corrected"]
    assert metrics["delay_iterations"] >= 0
    assert metrics["direct_error"] > 1e-6
