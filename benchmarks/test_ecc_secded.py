"""E2: SECDED coverage under 1/2/3-bit upsets."""


def test_secded_coverage(run_experiment):
    metrics = run_experiment("E2", 200)
    assert metrics["coverage_1"] == 1.0  # SEC
    assert metrics["coverage_2"] == 1.0  # DED
    # Multi-bit upsets escape almost always: an odd syndrome makes the
    # decoder "correct" the wrong bit.  This is the mechanism behind
    # real-world <100% ECC coverage (Compaq ~10%, Constantinescu ~18%).
    assert metrics["escape_3"] > 0.5
