"""Table 1: per-process application profiles."""


def test_table1_profiles(run_experiment):
    metrics = run_experiment("T1")
    # Paper shapes: Wavetoy is user-data dominated (94% user), the
    # climate model is header/control dominated (63% header for CAM).
    assert metrics["wavetoy"]["user_percent"] > 85.0
    assert metrics["climate"]["header_percent"] > 45.0
    assert metrics["moldyn"]["user_percent"] > 80.0
    # CAM has the largest image of the suite.
    assert metrics["climate"]["text"] > metrics["wavetoy"]["text"]
    assert metrics["climate"]["bss"] > metrics["wavetoy"]["bss"]
