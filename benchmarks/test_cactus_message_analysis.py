"""E5: the section-6.2 Cactus message-fault decomposition."""

from benchmarks.conftest import BENCH_CAMPAIGN_N


def test_cactus_message_decomposition(run_experiment):
    metrics = run_experiment("E5", max(BENCH_CAMPAIGN_N, 40))
    # Header hits are a small fraction of injections (paper: ~6%).
    assert metrics["header_fraction"] < 0.25
    # Header corruption is far more likely to corrupt execution than
    # payload corruption (the text output masks payload flips).
    if metrics["header_corrupt_rate"] > 0:
        assert (
            metrics["header_corrupt_rate"]
            > metrics["payload_corrupt_rate"]
        )
    # Overall error rate is low (paper: 3.1%).
    assert metrics["error_rate"] < 30.0
