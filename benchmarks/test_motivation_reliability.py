"""E1: the sections 1-2 reliability arithmetic."""

import pytest


def test_reliability_numbers(run_experiment):
    metrics = run_experiment("E1")
    # "a system with 1 GB of RAM can expect a soft error every 10 days"
    assert metrics["days_per_error_gb"] == pytest.approx(10.0, rel=0.05)
    # "33,000 x 0.05 or roughly 1,650 errors every ten days"
    assert metrics["asciq_escaped"] == pytest.approx(1650.0)
