"""Benchmark suite configuration.

One benchmark per paper artifact (Tables 1-7, experiments E1-E8).  Each
bench runs its experiment exactly once under pytest-benchmark's pedantic
mode (these are macro-benchmarks; statistical repetition is provided by
the campaigns' own sampling) and prints the regenerated artifact so the
run log doubles as the paper-vs-measured record.

Campaign sizes default to a CI-friendly value; set ``REPRO_CAMPAIGN_N``
(e.g. 500) to reproduce the paper's scale.  Campaign-backed benches also
honour ``REPRO_CAMPAIGN_JOBS``: setting it (e.g. to 4) runs their
injection trials through the engine's process-pool executor, with
results bit-identical to the serial run.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.experiments import EXPERIMENTS

#: Default injections per region for the campaign benches.
BENCH_CAMPAIGN_N = int(os.environ.get("REPRO_CAMPAIGN_N", "25"))

#: Parallel workers for campaign-backed benches (1 = serial in-process).
BENCH_CAMPAIGN_JOBS = int(os.environ.get("REPRO_CAMPAIGN_JOBS", "1"))


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run a registry experiment once under the benchmark harness,
    print its artifact, and return its metrics."""

    def runner(exp_id: str, n: int | None = None):
        exp = EXPERIMENTS[exp_id]
        kwargs = {}
        if exp.supports_jobs and BENCH_CAMPAIGN_JOBS > 1:
            kwargs["jobs"] = BENCH_CAMPAIGN_JOBS
            benchmark.extra_info["jobs"] = BENCH_CAMPAIGN_JOBS
        out = benchmark.pedantic(
            exp.run, args=(n,), kwargs=kwargs, rounds=1, iterations=1
        )
        artifact, metrics = out
        benchmark.extra_info["experiment"] = exp_id
        benchmark.extra_info["paper_artifact"] = exp.paper_artifact
        for key, value in metrics.items():
            if isinstance(value, (int, float, bool)):
                benchmark.extra_info[key] = value
        with capsys.disabled():
            print(f"\n=== {exp.id} ({exp.paper_artifact}): {exp.description} ===")
            print(artifact)
        return metrics

    return runner
