"""Translated fast-path speedup benchmarks (PR 8 tentpole acceptance).

Two bars, both paired with bit-identity checks against the interpreter:

* a fault-free golden run of a scalar-dominant kernel must be at least
  10x faster under block translation.  Scalar ALU loops are where the
  interpreter's per-instruction decode/dispatch overhead dominates, so
  this is the regime the translator was built for.
* an end-to-end stratified wavetoy campaign must beat the interpreter
  by at least 2x while producing identical per-trial records.  The
  whole-campaign ratio is bounded well below the scalar figure because
  most of wavetoy's cycle budget is vectorized numpy work, FPU traffic
  and the MPI layer - costs both modes share (EXPERIMENTS.md E19 breaks
  this down; measured medians are recorded in ``extra_info``).
"""

from __future__ import annotations

import time

import pytest

from repro.cpu.assembler import Program
from repro.cpu.vm import VM
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.memory.process import ProcessImage
from repro.memory.symbols import Linker

from .conftest import BENCH_CAMPAIGN_N

MIN_GOLDEN_SPEEDUP = 10.0
MIN_CAMPAIGN_SPEEDUP = 2.0

# ----------------------------------------------------------------------
# golden run: scalar-dominant kernel
# ----------------------------------------------------------------------

SCALAR_KERNEL = """
    movi eax, 0
    movi ebx, 0x1234
    movi ecx, 0
    movi edx, 7
    movi esi, 0x7FFF
    movi edi, 1
loop:
    add eax, ecx
    xor eax, ebx
    imul eax, edx
    sub eax, ebx
    and eax, esi
    or eax, edi
    shr eax, 1
    addi ecx, 1
    cmpi ecx, 20000
    jl loop
    ret
"""


def build_scalar_vm() -> tuple[ProcessImage, VM]:
    prog = Program()
    prog.add("k", SCALAR_KERNEL)
    linker = Linker()
    prog.add_to_linker(linker)
    linker.add_bss("scratchpad", 4096)
    image = ProcessImage.from_linker(
        linker, rank=0, heap_size=1 << 16, stack_size=1 << 14
    )
    prog.relocate(image)
    return image, VM(image)


def run_scalar(fastpath: bool, repeats: int = 5) -> tuple[float, tuple]:
    """Best-of-N fresh-image runs; translation cache warmed separately."""
    best = float("inf")
    state = None
    for _ in range(repeats):
        _, vm = build_scalar_vm()
        vm.fastpath = fastpath
        if fastpath:
            vm.call("k")  # warm the per-digest translation cache
            _, vm = build_scalar_vm()
            vm.fastpath = True
        t0 = time.perf_counter()
        vm.call("k")
        best = min(best, time.perf_counter() - t0)
        state = (
            vm.regs.capture_state(),
            vm.fpu.capture_state(),
            vm.clock.blocks,
            vm.instructions_retired,
        )
    return best, state


@pytest.mark.slow
def test_golden_run_speedup(benchmark):
    interp_s, interp_state = run_scalar(fastpath=False)
    timings = {}

    def fast_run():
        t, state = run_scalar(fastpath=True)
        timings["fast"] = t
        return state

    fast_state = benchmark.pedantic(fast_run, rounds=1, iterations=1)
    fast_s = timings["fast"]

    assert fast_state == interp_state  # registers, FPU, clock, retirement

    speedup = interp_s / fast_s if fast_s else float("inf")
    benchmark.extra_info["interp_seconds"] = interp_s
    benchmark.extra_info["fast_seconds"] = fast_s
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\ngolden run (scalar kernel): interp {interp_s * 1000:.1f}ms, "
        f"translated {fast_s * 1000:.1f}ms, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_GOLDEN_SPEEDUP


# ----------------------------------------------------------------------
# end-to-end stratified campaign
# ----------------------------------------------------------------------

CAMPAIGN_REGIONS = (Region.TEXT, Region.DATA, Region.REGULAR_REG)
CAMPAIGN_N = max(4, min(BENCH_CAMPAIGN_N, 16))


def run_campaign(fastpath: bool) -> tuple[float, object]:
    campaign = Campaign.from_registry("wavetoy", nprocs=2, seed=7)
    t0 = time.perf_counter()
    result = campaign.run(
        CAMPAIGN_REGIONS,
        CAMPAIGN_N,
        jobs=1,
        fastpath=fastpath,
        stratify=True,
    )
    return time.perf_counter() - t0, result


def fingerprint(result) -> list:
    rows = []
    for region in sorted(result.regions, key=lambda r: r.value):
        rr = result.regions[region]
        rows.append(
            (
                region.value,
                {m.value: c for m, c in rr.tally.counts.items()},
                [
                    (
                        spec.fault,
                        rec.delivered,
                        rec.address,
                        rec.symbol,
                        rec.detail,
                        rec.old_value,
                        rec.new_value,
                        m,
                    )
                    for spec, rec, m in rr.records
                ],
            )
        )
    return rows


@pytest.mark.slow
def test_stratified_campaign_speedup(benchmark):
    # Warm both modes once: predictor cache, reference profiles and the
    # translation cache are campaign-independent and should not skew
    # either timed section.
    run_campaign(fastpath=True)
    run_campaign(fastpath=False)

    timings = {}

    def fast_run():
        t, result = run_campaign(fastpath=True)
        timings["fast"] = t
        return result

    fast_result = benchmark.pedantic(fast_run, rounds=1, iterations=1)
    interp_s, interp_result = run_campaign(fastpath=False)
    fast_s = timings["fast"]

    assert fingerprint(fast_result) == fingerprint(interp_result)

    speedup = interp_s / fast_s if fast_s else float("inf")
    benchmark.extra_info["regions"] = ",".join(r.value for r in CAMPAIGN_REGIONS)
    benchmark.extra_info["n_per_region"] = CAMPAIGN_N
    benchmark.extra_info["interp_seconds"] = interp_s
    benchmark.extra_info["fast_seconds"] = fast_s
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\nstratified wavetoy campaign: interp {interp_s:.2f}s, "
        f"fastpath {fast_s:.2f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_CAMPAIGN_SPEEDUP
