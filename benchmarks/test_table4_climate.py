"""Table 4: fault injection results for CAM (climate).

Shape targets: messages sensitive (24.2%) but barely detected (3% App
Detected - CAM lacks message checksums); the moisture/NaN checks catch
a fraction of FP and memory faults; crashes dominate registers.
"""

from benchmarks.conftest import BENCH_CAMPAIGN_N


def test_table4_climate(run_experiment):
    metrics = run_experiment("T4", BENCH_CAMPAIGN_N)
    msg = metrics["message"]
    reg = metrics["regular_reg"]["error_rate_percent"]
    assert msg["error_rate_percent"] > 8.0
    # CAM detects far fewer message faults than NAMD (3% vs 46%).
    assert msg["app_detected"] < 35.0
    assert reg > 25.0
    assert reg > metrics["data"]["error_rate_percent"]
    for region in ("data", "bss", "heap"):
        assert metrics[region]["error_rate_percent"] <= 30.0, region
