#!/usr/bin/env python3
"""Bring your own application: write an MPI app against the public API
and put it under the fault injector.

Shows everything a downstream user needs: assembling VM kernels,
declaring static objects, allocating from the tagged heap, keeping MPI
descriptors in stack locals, and using the MPI_Init-wrapper config-file
path to arm a fault.

Run:  python examples/custom_app_injection.py
"""

from __future__ import annotations

from repro import JobConfig, Manifestation, classify
from repro.apps.base import MPIApplication, StackLocals, register_error_handler
from repro.injection.wrappers import install_from_config_text
from repro.memory.symbols import Linker
from repro.mpi.datatypes import MPI_DOUBLE, MPI_SUM
from repro.mpi.simulator import Job


class PiApp(MPIApplication):
    """Monte-Carlo-free pi: each rank integrates 4/(1+x^2) over its
    slice with a VM kernel, then allreduces the partial sums (the classic
    MPI teaching example, here on the simulated substrate)."""

    name = "pi"
    DEFAULTS = {"intervals_per_rank": 512}

    def kernel_sources(self):
        # args: (x, y, n, out): y[i] = 4/(1 + x[i]^2); *out = sum(y)
        return {
            "pi_kernel": """
                push ebp
                mov ebp, esp
                load esi, [ebp+8]     ; x values
                load edi, [ebp+12]    ; scratch
                load ecx, [ebp+16]    ; n
                vbin.mul edi, esi, esi, ecx    ; x^2
                fld1
                vbins.add edi, edi, ecx        ; 1 + x^2
                fpop
                fldimm 4
                vfill esi, ecx                 ; reuse x as the constant 4
                fpop
                vbin.div edi, esi, edi, ecx    ; 4 / (1 + x^2)
                vred.sum edi, ecx
                load ebx, [ebp+20]             ; out pointer
                fstp [ebx]
                mov esp, ebp
                pop ebp
                ret
            """,
        }

    def add_static_objects(self, linker: Linker) -> None:
        linker.add_data("pi_result", 16)

    def main(self, ctx):
        import numpy as np

        n = self.params["intervals_per_rank"]
        total = n * ctx.nprocs
        register_error_handler(ctx)

        heap = ctx.image.heap
        xbuf = heap.malloc(n * 8)
        ybuf = heap.malloc(n * 8)
        partial = heap.malloc(8)
        out = heap.malloc(8)

        # midpoints of this rank's slice of [0, 1)
        h = 1.0 / total
        i0 = ctx.rank * n
        ctx.image.heap_segment.view_f64(xbuf, n)[:] = (
            (np.arange(i0, i0 + n) + 0.5) * h
        )

        locals_ = StackLocals(ctx.image, "pi_kernel", ("x", "y", "n", "out"))
        locals_.set("x", xbuf)
        locals_.set("y", ybuf)
        locals_.set("n", n)
        locals_.set("out", partial)

        ctx.vm.call(
            "pi_kernel",
            [
                locals_.get("x"),
                locals_.get("y"),
                locals_.get_signed("n"),
                locals_.get("out"),
            ],
        )
        # scale the kernel's partial sum by the interval width
        local_sum = ctx.image.heap_segment.read_f64(partial) * h
        ctx.image.heap_segment.write_f64(partial, local_sum)

        yield from ctx.comm.allreduce(partial, out, 1, MPI_DOUBLE, MPI_SUM)
        pi = ctx.image.heap_segment.read_f64(out)
        if ctx.rank == 0:
            ctx.write_output("pi", f"{pi:.12f}")
            ctx.print(f"pi ~ {pi:.12f}")


CONFIG = """
[injection]
region = heap
rank = 2
time = 300
bit = 6
seed = 17
"""


def main() -> None:
    config = JobConfig(nprocs=4)

    reference = Job(PiApp(), config).run()
    print(f"fault-free: pi = {reference.outputs['pi']}")

    job = Job(PiApp(), config)
    record = install_from_config_text(job, CONFIG)
    result = job.run()
    outcome = classify(result, reference)
    print(f"with the config-file fault armed: {outcome.value}")
    print(f"  delivered={record.delivered}  target={record.detail}")
    if outcome is Manifestation.INCORRECT:
        print(f"  corrupted pi = {result.outputs['pi']}")


if __name__ == "__main__":
    main()
