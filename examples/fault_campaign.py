#!/usr/bin/env python3
"""A full Table-2/3/4 style fault-injection campaign.

Runs the sampled-injection campaign for a chosen application over all
eight regions and prints the paper-style table, including the
sampling-theory estimation error for the chosen sample size.

Run:  python examples/fault_campaign.py [wavetoy|moldyn|climate] [n_per_region]
"""

from __future__ import annotations

import sys
import time

from repro import Campaign, JobConfig
from repro.apps import APPLICATION_SUITE
from repro.harness.tables import render_campaign_table
from repro.sampling.plans import CampaignPlan
from repro.sampling.theory import achieved_error


def main(argv: list[str]) -> None:
    app_name = argv[1] if len(argv) > 1 else "wavetoy"
    n = int(argv[2]) if len(argv) > 2 else 30
    if app_name not in APPLICATION_SUITE:
        raise SystemExit(
            f"unknown application {app_name!r}; pick one of "
            f"{sorted(APPLICATION_SUITE)}"
        )
    app_cls = APPLICATION_SUITE[app_name]

    print(
        f"campaign: {app_name}, {n} injections x 8 regions "
        f"(estimation error d = {100 * achieved_error(n):.1f}% at 95%)"
    )
    campaign = Campaign(
        app_cls,
        JobConfig(nprocs=8),
        plan=CampaignPlan(per_region={r: n for r in (
            "regular_reg", "fp_reg", "bss", "data",
            "stack", "text", "heap", "message",
        )}),
    )
    t0 = time.time()
    result = campaign.run()
    elapsed = time.time() - t0
    print(
        render_campaign_table(
            result,
            include_detection_columns=app_name != "wavetoy",
            title=f"Fault Injection Results ({app_name})",
        )
    )
    print(f"\n{result.total_injections()} injected executions in {elapsed:.0f}s")
    print("(the paper's 400-500/region campaign took two months of cluster time)")


if __name__ == "__main__":
    main(sys.argv)
