#!/usr/bin/env python3
"""COTS reliability arithmetic: regenerate the paper's motivation.

Sections 1-2 of the paper argue that soft errors are inevitable at
scale: this example computes every number in that argument from first
principles - FIT rates, per-system error intervals, the ASCI Q escaped-
error estimate - and then *demonstrates* the two protection mechanisms
the paper discusses: SECDED ECC memory and the network checksum stack.

Run:  python examples/reliability_asciq.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster.ecc import coverage_experiment
from repro.cluster.machines import METACLUSTER, RHAPSODY, SYMPHONY
from repro.cluster.netchecksum import (
    escape_experiment,
    host_corruption_experiment,
)
from repro.cluster.reliability import (
    ASCI_Q,
    CONSERVATIVE_FIT_PER_MB,
    TYPICAL_FIT_PER_MB,
    asci_q_escaped_errors,
    days_between_errors,
    fit_to_mtbf_hours,
)


def main() -> None:
    print("=== soft-error rates (section 2.1) ===")
    lo, hi = TYPICAL_FIT_PER_MB
    print(f"typical DRAM SER (Tezzaron survey): {lo:.0f}-{hi:.0f} FIT/Mb")
    print(
        f"conservative working value: {CONSERVATIVE_FIT_PER_MB:.0f} FIT/Mb "
        f"(MTBF {fit_to_mtbf_hours(CONSERVATIVE_FIT_PER_MB) / 8766:.0f} years/Mb)"
    )
    for gb in (1, 4, 32):
        days = days_between_errors(gb, CONSERVATIVE_FIT_PER_MB)
        print(f"  {gb:3d} GB of RAM -> one soft error every {days:6.1f} days")

    print("\n=== the ASCI Q estimate (section 1) ===")
    print(
        f"{ASCI_Q.name}: {ASCI_Q.memory_gb / 1000:.0f} TB of ECC memory, "
        f"{100 * ASCI_Q.ecc_coverage:.0f}% coverage"
    )
    print(
        f"  raw errors / 10 days : {ASCI_Q.raw_errors_per_window():,.0f}\n"
        f"  escaped  / 10 days   : {asci_q_escaped_errors():,.0f} "
        f"(the paper's ~1,650)"
    )

    print("\n=== the experimental metacluster (section 4) ===")
    for cluster in (RHAPSODY, SYMPHONY):
        node = cluster.node
        print(
            f"{cluster.name}: {cluster.nodes} nodes x {node.cpus} x "
            f"{node.cpu_mhz} MHz {node.cpu_model}, "
            f"{node.ram_bytes >> 20} MB RAM, "
            f"{' + '.join(cluster.interconnects)}"
        )
    placement = METACLUSTER.placement(196, processes_per_cpu=2)
    print(f"Wavetoy's 196 ranks placed: rank 0 on {placement[0]}, "
          f"rank 195 on {placement[195]}")

    print("\n=== SECDED (72,64) coverage (section 2.1) ===")
    rng = np.random.default_rng(2004)
    for flips in (1, 2, 3, 4):
        stats = coverage_experiment(400, flips, rng)
        print(
            f"  {flips}-bit upsets: corrected {stats.corrected:3d}, "
            f"detected {stats.detected:3d}, escaped {stats.escaped:3d} "
            f"-> coverage {100 * stats.coverage:5.1f}%"
        )

    print("\n=== checksum escapes (section 2.2, Stone & Partridge) ===")
    wire = escape_experiment(3000, 256, 2, rng)
    host = host_corruption_experiment(3000, 256, 2, rng)
    print(
        f"  wire corruption: CRC-32 caught {wire.caught_crc}/{wire.trials}, "
        f"TCP-16 escaped {wire.escaped_tcp}"
    )
    print(
        f"  host corruption: CRC sees nothing; TCP-16 escaped "
        f"{host.escaped_tcp}/{host.trials} "
        f"({host.escape_rate('tcp'):.2%} - far above the 2^-32 theory)"
    )


if __name__ == "__main__":
    main()
