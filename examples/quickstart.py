#!/usr/bin/env python3
"""Quickstart: run one application, inject one fault, classify it.

This walks the full pipeline of the paper in miniature:

1. run Cactus Wavetoy fault-free to obtain the reference output and the
   execution profile (basic blocks per rank, received message volume);
2. arm a single-bit fault - here a flip in a live integer register at a
   random time, the paper's most sensitive region - via the MPI_Init
   wrapper mechanism;
3. run again and classify the outcome into the paper's taxonomy
   (Correct / Crash / Hang / Incorrect / App Detected / MPI Detected).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FaultSpec,
    JobConfig,
    Region,
    WavetoyApp,
    run_fault_free,
    run_with_fault,
)
from repro.memory.layout import TEXT_BASE


def main() -> None:
    config = JobConfig(nprocs=8, seed=42)

    # ------------------------------------------------------------------
    # 1. fault-free reference
    # ------------------------------------------------------------------
    print("running fault-free reference ...")
    reference = run_fault_free(WavetoyApp, config)
    blocks = reference.blocks_per_rank
    print(f"  completed in {reference.rounds} scheduler rounds")
    print(f"  basic blocks per rank: {blocks[0]} (x{len(blocks)} ranks)")
    print(f"  output: {len(reference.outputs['wavetoy.out'])} bytes of text")
    print(f"  process image loads at 0x{TEXT_BASE:08x} (the Figure-1 layout)")

    # ------------------------------------------------------------------
    # 2 + 3. inject one bit flip per region and classify
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    print("\none injection per region (single-bit flips):")
    for region in Region:
        rank = int(rng.integers(config.nprocs))
        common = dict(rank=rank, time_blocks=int(rng.integers(1, blocks[rank])))
        if region is Region.REGULAR_REG:
            spec = FaultSpec(region, bit=int(rng.integers(32)),
                             reg_index=int(rng.integers(8)), **common)
        elif region is Region.FP_REG:
            spec = FaultSpec(region, bit=int(rng.integers(80)),
                             fp_target=f"st{int(rng.integers(8))}", **common)
        elif region is Region.MESSAGE:
            volume = 4096  # anywhere in the early traffic
            spec = FaultSpec(region, rank=rank, bit=int(rng.integers(8)),
                             target_byte=int(rng.integers(volume)))
        elif region in (Region.TEXT, Region.DATA, Region.BSS):
            # Sample a user symbol address via the fault dictionary.
            from repro.injection.dictionary import FaultDictionary
            from repro.mpi.simulator import Job

            probe = Job(WavetoyApp(), config)
            entry = FaultDictionary(probe.images[0], rng).sample(region.value, rng)
            spec = FaultSpec(region, bit=int(rng.integers(8)),
                             address=entry.address, **common)
        else:  # heap, stack resolve their targets at injection time
            spec = FaultSpec(region, bit=int(rng.integers(8)), **common)

        manifestation, record, result = run_with_fault(
            WavetoyApp, config, spec, reference=reference, seed=int(rng.integers(1 << 30))
        )
        where = record.detail or (record.symbol or "")
        print(
            f"  {region.value:12s} -> {manifestation.value:12s} "
            f"(delivered={record.delivered}, target={where})"
        )

    print("\ndone - see examples/fault_campaign.py for the full Table-2 style sweep")


if __name__ == "__main__":
    main()
