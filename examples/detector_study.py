#!/usr/bin/env python3
"""Detector effectiveness study (sections 6.2 and 7).

Compares the molecular-dynamics application *with* and *without* its
NAMD-style message checksums under identical message-fault campaigns:
the checksummed build converts silent corruption and crashes into
Application Detected outcomes at a small runtime cost.  Also
demonstrates the section-7 progress-metric hang detector.

Run:  python examples/detector_study.py [n_injections]
"""

from __future__ import annotations

import sys

from repro import Campaign, JobConfig, Manifestation, MoldynApp, Region
from repro.detectors.progress import ProgressMonitor, ProgressSample
from repro.harness.runner import run_fault_free
from repro.sampling.plans import CampaignPlan


def message_campaign(checksums: bool, n: int):
    campaign = Campaign(
        lambda: MoldynApp(checksums=checksums),
        JobConfig(nprocs=8),
        plan=CampaignPlan(per_region={"message": n}),
        seed=1234,  # identical fault sample for both builds
    )
    return campaign.run_region(Region.MESSAGE, n)


def main(argv: list[str]) -> None:
    n = int(argv[1]) if len(argv) > 1 else 40

    print("=== message-checksum effectiveness (NAMD mechanism) ===")
    rows = {}
    for checksums in (True, False):
        label = "with checksums" if checksums else "without checksums"
        row = rows[checksums] = message_campaign(checksums, n)
        t = row.tally
        print(
            f"{label:20s}: error rate {row.error_rate_percent:5.1f}%  "
            f"crash {t.counts[Manifestation.CRASH]:2d}  "
            f"hang {t.counts[Manifestation.HANG]:2d}  "
            f"incorrect {t.counts[Manifestation.INCORRECT]:2d}  "
            f"app-detected {t.counts[Manifestation.APP_DETECTED]:2d}"
        )
    detected = rows[True].tally.counts[Manifestation.APP_DETECTED]
    silent = rows[False].tally.counts[Manifestation.INCORRECT]
    print(
        f"-> checksums converted corruption into detection "
        f"({detected} detected vs {silent} silent without)"
    )

    print("\n=== checksum runtime overhead ===")
    cfg = JobConfig(nprocs=8)
    with_ck = max(run_fault_free(lambda: MoldynApp(checksums=True), cfg).blocks_per_rank)
    without = max(run_fault_free(lambda: MoldynApp(checksums=False), cfg).blocks_per_rank)
    print(
        f"blocks {without} -> {with_ck}: "
        f"{100 * (with_ck - without) / without:.1f}% overhead "
        f"(NAMD measured ~3%)"
    )

    print("\n=== progress-metric hang detection (section 7) ===")
    monitor = ProgressMonitor(window=4, threshold=0.1)
    for tick in range(1, 11):  # healthy phase at ~1000 blocks/tick
        monitor.record(ProgressSample(tick=tick, blocks=1000 * tick))
    rate = monitor.calibrate()
    for tick in range(11, 25):  # a corrupted loop bound: no progress
        monitor.record(ProgressSample(tick=tick, blocks=10_000))
    print(
        f"calibrated {rate:.0f} blocks/tick; stall begins at tick 10; "
        f"detector fires at tick {monitor.detection_tick()}"
    )
    print("(the job-level budget would need ~2.5x the expected runtime)")


if __name__ == "__main__":
    main(sys.argv)
