#!/usr/bin/env python3
"""Working-set analysis: regenerate the paper's Tables 5-7 and tie them
to fault sensitivity (section 6.1.2).

For each application in the suite this traces a fault-free run, prints
the text and Data+BSS+Heap working-set curves against basic-block time,
summarises per-section liveness (how much memory a fault can actually
reach), and - for wavetoy - correlates the compute-phase working set
with measured static-region error rates.

Run:  python examples/working_set_analysis.py [n_injections]
"""

from __future__ import annotations

import sys

from repro import JobConfig
from repro.analysis.correlation import correlate_working_set
from repro.apps import APPLICATION_SUITE, WavetoyApp
from repro.harness.figures import render_working_set_table
from repro.injection import Campaign, Region
from repro.sampling.plans import CampaignPlan
from repro.trace.accesses import liveness_summary
from repro.trace.working_set import trace_memory


def main(argv: list[str]) -> None:
    n = int(argv[1]) if len(argv) > 1 else 15
    cfg = JobConfig(nprocs=8)

    reports = {}
    for name, cls in APPLICATION_SUITE.items():
        report = trace_memory(cls(), cfg)
        reports[name] = report
        print(render_working_set_table(report, samples=10))
        print()

    print("=== per-section liveness (rank 0, wavetoy) ===")
    from repro.mpi.simulator import Job

    job = Job(WavetoyApp(), JobConfig(nprocs=8, track_memory=True))
    job.run()
    image = job.images[0]
    for seg in (image.text, image.data, image.bss, image.heap_segment):
        s = liveness_summary(seg)
        print(
            f"  {s['name']:5s}: {100 * s['loaded_fraction']:5.1f}% loaded, "
            f"{s['cold_bytes'] >> 10:4d} KiB never read, "
            f"{100 * s['overwrite_masked_fraction']:5.1f}% overwrite-masked"
        )

    print(
        f"\n=== working set vs error rate (section 6.1.2, "
        f"{n} injections/region) ==="
    )
    campaign = Campaign(
        WavetoyApp,
        cfg,
        plan=CampaignPlan(per_region={r.value: n for r in Region}),
        seed=612,
    )
    result = campaign.run(
        regions=(Region.TEXT, Region.DATA, Region.BSS, Region.HEAP)
    )
    correlation = correlate_working_set(reports["wavetoy"], result)
    print(correlation.text)
    print(
        "consistent with the paper's claim (error rate bounded by the "
        f"compute-phase working set): {correlation.consistent}"
    )


if __name__ == "__main__":
    main(sys.argv)
