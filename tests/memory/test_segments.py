"""Unit tests for memory segments."""

import numpy as np
import pytest

from repro.clock import Clock
from repro.errors import SimBusError, SimSegfault
from repro.memory.layout import GRANULE
from repro.memory.segments import Perm, Segment


@pytest.fixture
def seg():
    return Segment("data", 0x1000, 4096, Perm.RW, Clock(), track=True)


class TestAddressing:
    def test_contains(self, seg):
        assert seg.contains(0x1000)
        assert seg.contains(0x1FFF)
        assert not seg.contains(0x2000)
        assert not seg.contains(0xFFF)
        assert seg.contains(0x1FF0, 16)
        assert not seg.contains(0x1FF0, 17)

    def test_end(self, seg):
        assert seg.end == 0x2000

    def test_out_of_range_read_raises(self, seg):
        with pytest.raises(SimSegfault):
            seg.read_u32(0x2000)

    def test_straddling_access_raises(self, seg):
        with pytest.raises(SimSegfault):
            seg.read_bytes(0x1FFE, 4)

    def test_zero_size_segment_rejected(self):
        with pytest.raises(ValueError):
            Segment("x", 0, 0)

    def test_segment_must_fit_32_bits(self):
        with pytest.raises(ValueError):
            Segment("x", 0xFFFF_F000, 0x2000)


class TestScalarAccess:
    def test_u32_roundtrip(self, seg):
        seg.write_u32(0x1010, 0xDEADBEEF)
        assert seg.read_u32(0x1010) == 0xDEADBEEF

    def test_u32_little_endian(self, seg):
        seg.write_u32(0x1000, 0x04030201)
        assert seg.read_bytes(0x1000, 4) == b"\x01\x02\x03\x04"

    def test_i32_roundtrip_negative(self, seg):
        seg.write_i32(0x1004, -12345)
        assert seg.read_i32(0x1004) == -12345

    def test_f64_roundtrip(self, seg):
        seg.write_f64(0x1008, 3.14159)
        assert seg.read_f64(0x1008) == 3.14159

    def test_u8_masking(self, seg):
        seg.write_u8(0x1000, 0x1FF)
        assert seg.read_u8(0x1000) == 0xFF

    def test_bytes_roundtrip(self, seg):
        seg.write_bytes(0x1100, b"hello world")
        assert seg.read_bytes(0x1100, 11) == b"hello world"


class TestViews:
    def test_f64_view_aliases_storage(self, seg):
        view = seg.view_f64(0x1000, 8)
        view[:] = np.arange(8.0)
        assert seg.read_f64(0x1000 + 3 * 8) == 3.0

    def test_unaligned_f64_view_raises(self, seg):
        with pytest.raises(SimBusError):
            seg.view_f64(0x1004, 2)

    def test_u8_view(self, seg):
        seg.write_bytes(0x1000, b"\x01\x02\x03")
        assert list(seg.view_u8(0x1000, 3)) == [1, 2, 3]


class TestBitFlips:
    def test_flip_sets_and_clears(self, seg):
        assert seg.flip_bit(0x1000, 0) == 1
        assert seg.flip_bit(0x1000, 0) == 0

    def test_flip_changes_f64(self, seg):
        seg.write_f64(0x1000, 1.0)
        seg.flip_bit(0x1007, 7)  # sign bit of the little-endian double
        assert seg.read_f64(0x1000) == -1.0

    def test_flip_bad_bit_index(self, seg):
        with pytest.raises(ValueError):
            seg.flip_bit(0x1000, 8)

    def test_flip_bumps_version(self, seg):
        v = seg.version
        seg.flip_bit(0x1000, 1)
        assert seg.version == v + 1

    def test_writes_bump_version(self, seg):
        v = seg.version
        seg.write_u32(0x1000, 1)
        seg.write_bytes(0x1004, b"xy")
        seg.write_f64(0x1008, 2.0)
        assert seg.version == v + 3


class TestTracking:
    def test_load_marks_granules(self, seg):
        seg.clock.blocks = 77
        seg.note_load(0x1000, GRANULE + 1)  # spans two granules
        assert seg.last_load[0] == 77
        assert seg.last_load[1] == 77
        assert seg.last_load[2] == -1

    def test_store_and_exec_tracked_separately(self, seg):
        seg.clock.blocks = 5
        seg.note_store(0x1000, 4)
        seg.note_exec(0x1040, 8)
        assert seg.last_store[0] == 5
        assert seg.last_load[0] == -1
        assert seg.last_exec[2] == 5

    def test_untracked_segment_has_no_arrays(self):
        seg = Segment("x", 0, 64, track=False)
        assert seg.last_load is None
        seg.note_load(0, 4)  # no-op, must not raise
