"""Memory layout constants and helpers (Figure 1)."""

import pytest

from repro.clock import Clock
from repro.memory.layout import (
    GRANULE,
    KERNEL_BASE,
    PAGE,
    SHARED_LIBS_BASE,
    STACK_TOP,
    TEXT_BASE,
    align_up,
    granules,
)


class TestFigure1Constants:
    def test_ordering(self):
        """Text below libraries below stack below kernel space."""
        assert TEXT_BASE < SHARED_LIBS_BASE < STACK_TOP <= KERNEL_BASE

    def test_classic_values(self):
        assert TEXT_BASE == 0x08048000
        assert SHARED_LIBS_BASE == 0x40000000
        assert KERNEL_BASE == 0xC0000000

    def test_page_power_of_two(self):
        assert PAGE & (PAGE - 1) == 0


class TestHelpers:
    @pytest.mark.parametrize(
        "value,alignment,expected",
        [(0, 16, 0), (1, 16, 16), (16, 16, 16), (17, 16, 32), (4095, PAGE, PAGE)],
    )
    def test_align_up(self, value, alignment, expected):
        assert align_up(value, alignment) == expected

    def test_align_up_rejects_non_power(self):
        with pytest.raises(ValueError):
            align_up(10, 3)
        with pytest.raises(ValueError):
            align_up(10, 0)

    def test_granules(self):
        assert granules(0) == 0
        assert granules(1) == 1
        assert granules(GRANULE) == 1
        assert granules(GRANULE + 1) == 2


class TestClock:
    def test_tick_and_reset(self):
        c = Clock()
        assert c.blocks == 0
        assert c.tick() == 1
        assert c.tick(10) == 11
        c.reset()
        assert c.blocks == 0

    def test_shared_reference_semantics(self):
        """Segments and VMs share one clock object per process."""
        c = Clock()
        alias = c
        alias.tick(5)
        assert c.blocks == 5
