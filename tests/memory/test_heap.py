"""Unit tests for the tagging heap allocator (the paper's malloc wrapper)."""

import pytest

from repro.clock import Clock
from repro.memory.heap import ChunkTag, HEADER_SIZE, HeapAllocator, HeapCorruption
from repro.memory.segments import Perm, Segment


@pytest.fixture
def heap():
    seg = Segment("heap", 0x10000, 1 << 16, Perm.RW, Clock())
    return HeapAllocator(seg)


class TestAllocation:
    def test_malloc_returns_payload_addr(self, heap):
        addr = heap.malloc(100)
        assert heap.segment.contains(addr, 100)

    def test_header_written_to_memory(self, heap):
        addr = heap.malloc(64)
        assert heap.segment.read_u32(addr - HEADER_SIZE) == int(ChunkTag.USER)
        assert heap.segment.read_u32(addr - HEADER_SIZE + 4) == 64

    def test_eight_byte_header_per_paper(self):
        assert HEADER_SIZE == 8

    def test_disjoint_chunks(self, heap):
        a = heap.malloc(100)
        b = heap.malloc(100)
        assert abs(a - b) >= 100 + HEADER_SIZE

    def test_zero_size_rejected(self, heap):
        with pytest.raises(ValueError):
            heap.malloc(0)

    def test_exhaustion_raises_memoryerror(self, heap):
        with pytest.raises(MemoryError):
            heap.malloc(1 << 20)

    def test_calloc_zeroes(self, heap):
        addr = heap.malloc(16)
        heap.segment.write_bytes(addr, b"\xff" * 16)
        heap.free(addr)
        addr2 = heap.calloc(16)
        assert heap.segment.read_bytes(addr2, 16) == bytes(16)

    def test_alignment(self, heap):
        for _ in range(5):
            assert heap.malloc(13) % 8 == 0


class TestFree:
    def test_free_and_reuse(self, heap):
        a = heap.malloc(64)
        heap.free(a)
        b = heap.malloc(64)
        assert b == a  # first fit reuses the hole

    def test_double_free_detected(self, heap):
        a = heap.malloc(8)
        heap.free(a)
        with pytest.raises(HeapCorruption):
            heap.free(a)

    def test_free_wild_pointer_detected(self, heap):
        with pytest.raises(HeapCorruption):
            heap.free(0x10020)

    def test_coalescing(self, heap):
        a = heap.malloc(1000)
        b = heap.malloc(1000)
        c = heap.malloc(1000)
        heap.free(a)
        heap.free(b)
        heap.free(c)
        big = heap.malloc(3000)  # only possible if holes merged
        assert heap.segment.contains(big, 3000)

    def test_in_use_accounting(self, heap):
        base = heap.in_use
        a = heap.malloc(100)
        assert heap.in_use > base
        heap.free(a)
        assert heap.in_use == base

    def test_high_water(self, heap):
        a = heap.malloc(100)
        heap.free(a)
        assert heap.high_water >= 100


class TestRealloc:
    def test_realloc_preserves_contents(self, heap):
        a = heap.malloc(16)
        heap.segment.write_bytes(a, b"0123456789abcdef")
        b = heap.realloc(a, 32)
        assert heap.segment.read_bytes(b, 16) == b"0123456789abcdef"

    def test_realloc_keeps_tag(self, heap):
        a = heap.malloc(16, ChunkTag.MPI)
        b = heap.realloc(a, 8)
        assert heap.chunk_at(b).tag is ChunkTag.MPI


class TestTagging:
    def test_default_tag_is_user(self, heap):
        assert heap.chunk_at(heap.malloc(8)).tag is ChunkTag.USER

    def test_inside_mpi_flag(self, heap):
        with heap.inside_mpi():
            a = heap.malloc(8)
        b = heap.malloc(8)
        assert heap.chunk_at(a).tag is ChunkTag.MPI
        assert heap.chunk_at(b).tag is ChunkTag.USER

    def test_inside_mpi_nests(self, heap):
        with heap.inside_mpi():
            with heap.inside_mpi():
                pass
            assert heap.current_tag is ChunkTag.MPI
        assert heap.current_tag is ChunkTag.USER

    def test_byte_accounting_by_tag(self, heap):
        heap.malloc(100)
        with heap.inside_mpi():
            heap.malloc(50)
        assert heap.user_bytes() == 100
        assert heap.mpi_bytes() == 50


class TestInjectorScan:
    def test_scan_finds_user_chunk(self, heap):
        with heap.inside_mpi():
            heap.malloc(64)
        user = heap.malloc(64)
        found = heap.find_user_chunk_from(heap.segment.base)
        assert found.addr == user

    def test_scan_wraps_around(self, heap):
        user = heap.malloc(64)
        found = heap.find_user_chunk_from(heap.segment.end - 1)
        assert found.addr == user

    def test_scan_skips_mpi_chunks(self, heap):
        with heap.inside_mpi():
            for _ in range(4):
                heap.malloc(32)
        assert heap.find_user_chunk_from(heap.segment.base) is None

    def test_corrupted_header_detected_by_walk(self, heap):
        addr = heap.malloc(64)
        heap.segment.flip_bit(addr - HEADER_SIZE, 3)  # damage the tag
        with pytest.raises(HeapCorruption):
            list(heap.iter_chunks())
