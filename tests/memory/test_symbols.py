"""Unit tests for symbols and the linker."""

import pytest

from repro.memory.layout import PAGE, STACK_TOP, TEXT_BASE
from repro.memory.symbols import Linker, ObjectDef, Symbol, SymbolTable


class TestSymbolTable:
    def test_lookup_and_resolve(self):
        st = SymbolTable(
            [
                Symbol("a", 0x1000, 16, "text", "user"),
                Symbol("b", 0x1010, 16, "text", "mpi"),
            ]
        )
        assert st.lookup("a").addr == 0x1000
        assert st.resolve(0x1015).name == "b"
        assert st.resolve(0x1020) is None
        with pytest.raises(KeyError):
            st.lookup("missing")

    def test_duplicate_rejected(self):
        st = SymbolTable([Symbol("a", 0, 8, "data", "user")])
        with pytest.raises(ValueError):
            st.add(Symbol("a", 0x100, 8, "data", "user"))

    def test_filters(self):
        st = SymbolTable(
            [
                Symbol("t1", 0x0, 8, "text", "user"),
                Symbol("t2", 0x8, 8, "text", "mpi"),
                Symbol("d1", 0x100, 8, "data", "user"),
            ]
        )
        assert {s.name for s in st.symbols("text")} == {"t1", "t2"}
        assert {s.name for s in st.symbols(library="mpi")} == {"t2"}
        assert st.section_size("text") == 16
        assert st.section_size("text", "user") == 8


class TestObjectDef:
    def test_validation(self):
        with pytest.raises(ValueError):
            ObjectDef("x", "text", 0)
        with pytest.raises(ValueError):
            ObjectDef("x", "data", 4, init=b"12345")
        with pytest.raises(ValueError):
            ObjectDef("x", "bss", 8, init=b"1")


class TestLinker:
    def test_figure1_layout(self):
        linker = Linker()
        linker.add_text("code", b"\x01" * 64)
        linker.add_data("globals", 128, init=b"\xaa" * 4)
        linker.add_bss("zeros", 256)
        image = linker.link(heap_size=4096, stack_size=4096)
        assert image.text.base == TEXT_BASE
        assert image.text.base < image.data.base < image.bss.base < image.heap.base
        assert image.stack.end == STACK_TOP
        assert image.data.base % PAGE == 0

    def test_symbols_and_content(self):
        linker = Linker()
        linker.add_text("f", b"\x02" * 16)
        linker.add_data("g", 8, init=b"\x05\x00\x00\x00\x00\x00\x00\x00")
        image = linker.link()
        f = image.symtab.lookup("f")
        assert image.text.read_bytes(f.addr, 16) == b"\x02" * 16
        g = image.symtab.lookup("g")
        assert image.data.read_u32(g.addr) == 5

    def test_bss_zero_initialized(self):
        linker = Linker()
        linker.add_text("f", b"\x01" * 8)
        linker.add_bss("z", 64)
        image = linker.link()
        z = image.symtab.lookup("z")
        assert image.bss.read_bytes(z.addr, 64) == bytes(64)

    def test_entry_points(self):
        linker = Linker()
        linker.add_text("main", b"\x01" * 8)
        linker.add_text("helper", b"\x01" * 8)
        image = linker.link()
        assert set(image.entry_points) == {"main", "helper"}

    def test_duplicate_object_rejected(self):
        linker = Linker()
        linker.add_text("f", b"\x01" * 8)
        with pytest.raises(ValueError):
            linker.add_data("f", 8)

    def test_mixed_libraries_share_sections(self):
        linker = Linker()
        linker.add_text("user_fn", b"\x01" * 8, library="user")
        linker.add_text("MPI_Send", b"\x01" * 8, library="mpi")
        image = linker.link()
        u = image.symtab.lookup("user_fn")
        m = image.symtab.lookup("MPI_Send")
        assert image.text.contains(u.addr) and image.text.contains(m.addr)


class TestProcessImage:
    def test_section_sizes(self):
        from repro.memory.process import ProcessImage

        linker = Linker()
        linker.add_text("f", b"\x01" * 100)
        linker.add_data("d", 50)
        linker.add_bss("b", 25)
        image = ProcessImage.from_linker(linker)
        sizes = image.section_sizes()
        assert sizes["text"] == 100
        assert sizes["data"] == 50
        assert sizes["bss"] == 25
        assert sizes["heap"] == 0

    def test_user_text_detection(self):
        from repro.memory.process import ProcessImage

        linker = Linker()
        linker.add_text("app", b"\x01" * 16, library="user")
        linker.add_text("MPI_Recv", b"\x01" * 16, library="mpi")
        image = ProcessImage.from_linker(linker)
        assert image.in_user_text(image.addr_of("app"))
        assert not image.in_user_text(image.addr_of("MPI_Recv"))
        assert not image.in_user_text(0)
