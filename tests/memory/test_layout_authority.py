"""The segment-layout authority: one source of truth for every consumer.

PR 7 made :mod:`repro.memory.layout` the single authority for default
segment sizes, the static-image window, and the escape bit.  Three
independent consumers - the AVF heuristic, the injection dictionary,
and the interval domain - used to hard-code compatible copies; these
tests pin the shared values so the next drift is a test failure, not a
silently wrong crash stratum.
"""

from repro.memory.layout import (
    DEFAULT_HEAP_SIZE,
    DEFAULT_STACK_SIZE,
    SHARED_LIBS_BASE,
    STACK_TOP,
    STATIC_IMAGE_WINDOW,
    TEXT_BASE,
    segment_escape_bit,
)
from repro.memory.symbols import Linker


class TestAuthorityValues:
    def test_static_image_window_is_figure_1(self):
        assert STATIC_IMAGE_WINDOW == (TEXT_BASE, SHARED_LIBS_BASE)

    def test_escape_bit_clears_the_largest_default_segment(self):
        # Flipping bit k moves an address by 2^k; the bit is an escape
        # proof only if that step exceeds every default segment.
        bit = segment_escape_bit()
        assert bit == 21
        assert (1 << bit) > DEFAULT_HEAP_SIZE >= DEFAULT_STACK_SIZE

    def test_avf_heuristic_uses_the_authority(self):
        from repro.staticanalysis.avf import MEM_ESCAPE_BIT

        assert MEM_ESCAPE_BIT == segment_escape_bit()

    def test_interval_domain_uses_the_authority(self):
        from repro.staticanalysis.outcomes.intervals import stack_window

        assert stack_window() == (STACK_TOP - DEFAULT_STACK_SIZE, STACK_TOP)


class TestLinkerDefaults:
    def test_default_link_stays_inside_the_static_window(self):
        linker = Linker()
        linker.add_text("f", b"\x01" * 64)
        linker.add_data("d", 32)
        linker.add_bss("b", 64)
        image = linker.link()
        lo, hi = STATIC_IMAGE_WINDOW
        for seg in (image.text, image.data, image.bss, image.heap):
            assert lo <= seg.base and seg.base + seg.size <= hi

    def test_default_stack_matches_the_stack_window(self):
        from repro.staticanalysis.outcomes.intervals import stack_window

        linker = Linker()
        linker.add_text("f", b"\x01" * 64)
        image = linker.link()
        w_lo, w_hi = stack_window()
        assert image.stack.base == w_lo
        assert image.stack.base + image.stack.size == w_hi

    def test_suite_apps_link_with_the_default_stack(self):
        # The interval domain seeds ESP/EBP from stack_window(); that is
        # only sound if the apps actually link with the default size.
        from repro.apps import APPLICATION_SUITE
        from repro.mpi.simulator import Job, JobConfig
        from repro.staticanalysis.outcomes.intervals import stack_window

        app = APPLICATION_SUITE["wavetoy"]()
        job = Job(app, JobConfig(nprocs=2))
        job.run()
        segment = job.images[0].stack.segment
        assert (segment.base, segment.end) == stack_window()
