"""Unit tests for the EBP-linked stack."""

import pytest

from repro.clock import Clock
from repro.errors import SimSegfault
from repro.memory.segments import Perm, Segment
from repro.memory.stack import StackManager, StackOverflow


@pytest.fixture
def stack():
    seg = Segment("stack", 0xB000_0000, 1 << 14, Perm.RW, Clock())
    return StackManager(seg)


class TestPushPop:
    def test_roundtrip(self, stack):
        stack.push_u32(0xAABBCCDD)
        stack.push_u32(7)
        assert stack.pop_u32() == 7
        assert stack.pop_u32() == 0xAABBCCDD

    def test_grows_down(self, stack):
        top = stack.esp
        stack.push_u32(1)
        assert stack.esp == top - 4

    def test_underflow_raises(self, stack):
        with pytest.raises(SimSegfault):
            stack.pop_u32()

    def test_overflow_raises(self, stack):
        with pytest.raises(StackOverflow):
            for _ in range(10_000):
                stack.push_u32(0)

    def test_alloca(self, stack):
        base = stack.alloca(100)
        assert base == stack.esp
        assert stack.used_bytes() >= 100


class TestFrames:
    def test_frame_layout(self, stack):
        frame = stack.push_frame(0x08048100, args=(11, 22), locals_size=8)
        seg = stack.segment
        assert seg.read_u32(frame.ebp + 4) == 0x08048100  # return address
        assert seg.read_u32(frame.arg_addr(0)) == 11
        assert seg.read_u32(frame.arg_addr(1)) == 22

    def test_frame_bounds(self, stack):
        frame = stack.push_frame(0x1000, args=(1,), locals_size=16)
        assert frame.low == frame.locals_base
        assert frame.high == frame.args_base + 4
        with pytest.raises(IndexError):
            frame.arg_addr(1)
        with pytest.raises(IndexError):
            frame.local_addr(16)

    def test_pop_restores(self, stack):
        esp0, ebp0 = stack.esp, stack.ebp
        frame = stack.push_frame(0x1234, args=(1, 2, 3), locals_size=4)
        ret = stack.pop_frame(frame)
        assert ret == 0x1234
        assert stack.esp == esp0
        assert stack.ebp == ebp0

    def test_walk_chain(self, stack):
        f1 = stack.push_frame(0x1000)
        f2 = stack.push_frame(0x2000)
        walked = list(stack.walk_frames())
        assert [ret for _, ret in walked] == [0x2000, 0x1000]
        assert walked[0][0] == f2.ebp
        assert walked[1][0] == f1.ebp

    def test_walk_with_start_override(self, stack):
        f1 = stack.push_frame(0x1000)
        stack.push_frame(0x2000)
        walked = list(stack.walk_frames(start_ebp=f1.ebp))
        assert [ret for _, ret in walked] == [0x1000]

    def test_walk_stops_on_corrupt_link(self, stack):
        stack.push_frame(0x1000)
        f2 = stack.push_frame(0x2000)
        # Smash the saved-EBP link so it points below itself.
        stack.segment.write_u32(f2.ebp, f2.ebp - 64)
        walked = list(stack.walk_frames())
        assert len(walked) == 1  # unwinder gives up

    def test_pop_with_corrupted_ebp_faults(self, stack):
        frame = stack.push_frame(0x1000)
        stack.ebp ^= 0x40  # register corruption
        with pytest.raises(SimSegfault):
            stack.pop_frame(frame)

    def test_live_extent(self, stack):
        stack.push_frame(0x1000, args=(1,), locals_size=32)
        low, high = stack.live_extent()
        assert low == stack.esp
        assert high == stack.segment.end
