"""Unit tests for the address space."""

import pytest

from repro.errors import SimSegfault
from repro.memory.address_space import AddressSpace
from repro.memory.segments import Perm


@pytest.fixture
def space():
    sp = AddressSpace()
    sp.map("text", 0x1000, 0x1000, Perm.RX, track=True)
    sp.map("data", 0x4000, 0x1000, Perm.RW, track=True)
    return sp


class TestMapping:
    def test_overlap_rejected(self, space):
        with pytest.raises(ValueError):
            space.map("bad", 0x4800, 0x1000)

    def test_find_unmapped_raises(self, space):
        with pytest.raises(SimSegfault):
            space.find(0x9000)

    def test_find_by_name(self, space):
        assert space.segment("data").name == "data"
        with pytest.raises(KeyError):
            space.segment("nope")

    def test_is_mapped(self, space):
        assert space.is_mapped(0x4000, 0x1000)
        assert not space.is_mapped(0x4000, 0x1001)

    def test_total_mapped(self, space):
        assert space.total_mapped() == 0x2000

    def test_iter_addresses_sorted(self, space):
        assert list(space.iter_addresses()) == [(0x1000, 0x1000), (0x4000, 0x1000)]


class TestPermissions:
    def test_write_to_text_denied(self, space):
        with pytest.raises(SimSegfault):
            space.store_u32(0x1000, 1)

    def test_execute_data_denied(self, space):
        with pytest.raises(SimSegfault):
            space.fetch_code(0x4000, 8)

    def test_read_text_allowed(self, space):
        assert space.load_u32(0x1000) == 0

    def test_vector_write_to_text_denied(self, space):
        with pytest.raises(SimSegfault):
            space.vector_f64(0x1000, 4, write=True)

    def test_injector_flip_ignores_permissions(self, space):
        space.flip_bit(0x1000, 3)  # text write via flip is allowed
        assert space.load_u32(0x1000) == 8


class TestAccess:
    def test_scalar_roundtrips(self, space):
        space.store_u32(0x4000, 0xCAFEBABE)
        assert space.load_u32(0x4000) == 0xCAFEBABE
        space.store_i32(0x4004, -42)
        assert space.load_i32(0x4004) == -42
        space.store_f64(0x4008, 2.5)
        assert space.load_f64(0x4008) == 2.5
        space.store_bytes(0x4010, b"abc")
        assert space.load_bytes(0x4010, 3) == b"abc"

    def test_vector_negative_count(self, space):
        with pytest.raises(SimSegfault):
            space.vector_f64(0x4000, -1)

    def test_vector_roundtrip(self, space):
        v = space.vector_f64(0x4000, 4, write=True)
        v[:] = [1.0, 2.0, 3.0, 4.0]
        assert space.load_f64(0x4018) == 4.0

    def test_loads_recorded(self, space):
        space.clock.blocks = 9
        space.load_u32(0x4000)
        assert space.segment("data").last_load[0] == 9

    def test_fetch_records_exec(self, space):
        space.clock.blocks = 3
        space.fetch_code(0x1000, 8)
        assert space.segment("text").last_exec[0] == 3

    def test_find_cache_consistency(self, space):
        # Repeated hits through the one-entry cache must stay correct
        # when alternating segments.
        for _ in range(3):
            assert space.find(0x1000).name == "text"
            assert space.find(0x4000).name == "data"
