"""Naturally fault-tolerant algorithms (section 8.2 extension)."""

import numpy as np
import pytest

from repro.analysis.natural_ft import (
    direct_solve_with_fault,
    jacobi_solve,
    make_system,
    resilience_experiment,
)


class TestJacobi:
    def test_clean_convergence(self, rng):
        a, b = make_system(16, rng)
        result = jacobi_solve(a, b)
        assert result.converged
        np.testing.assert_allclose(result.x, np.linalg.solve(a, b), atol=1e-8)

    def test_small_system_rejected(self, rng):
        with pytest.raises(ValueError):
            make_system(1, rng)

    def test_zero_diagonal_rejected(self):
        a = np.array([[0.0, 1.0], [1.0, 2.0]])
        with pytest.raises(ValueError, match="diagonal"):
            jacobi_solve(a, np.ones(2))

    def test_fault_only_delays_convergence(self, rng):
        """The paper's §8.2 claim, quantified: a mid-solve upset costs
        iterations, not correctness."""
        a, b = make_system(24, rng)
        clean = jacobi_solve(a, b)
        faulty = jacobi_solve(
            a, b, fault_iteration=clean.iterations // 2, fault_index=5,
            fault_bit=58,
        )
        assert faulty.converged
        assert faulty.iterations >= clean.iterations
        np.testing.assert_allclose(faulty.x, clean.x, atol=1e-8)

    def test_infinite_upset_survivable(self, rng):
        """Even an Inf/NaN-producing flip is recovered (the component is
        effectively lost and rebuilt)."""
        a, b = make_system(16, rng)
        faulty = jacobi_solve(a, b, fault_iteration=3, fault_index=0, fault_bit=62)
        assert faulty.converged


class TestDirectComparison:
    def test_direct_method_silently_wrong(self, rng):
        a, b = make_system(24, rng)
        truth = np.linalg.solve(a, b)
        wrong = direct_solve_with_fault(a, b, fault_index=(5, 5), fault_bit=58)
        assert np.abs(wrong - truth).max() > 1e-6

    def test_experiment_report(self):
        report = resilience_experiment(n=24, seed=2)
        assert report.iterative_self_corrected
        assert report.delay_iterations >= 0
        assert report.direct_error > report.iterative_error
        assert "Jacobi" in report.text
