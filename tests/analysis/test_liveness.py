"""Register-liveness ablation (E7)."""

import numpy as np
import pytest

from repro.analysis.liveness import (
    OPTIMIZED_SOURCE,
    UNOPTIMIZED_SOURCE,
    register_sensitivity,
    register_usage_report,
)


class TestKernels:
    def test_both_variants_compute_the_same_value(self):
        from repro.analysis.liveness import _EXPECTED, _build

        for source in (OPTIMIZED_SOURCE, UNOPTIMIZED_SOURCE):
            _, vm, _ = _build(source)
            assert vm.call("kernel") == _EXPECTED

    def test_unoptimized_is_slower(self):
        from repro.analysis.liveness import _build

        _, vm_o, _ = _build(OPTIMIZED_SOURCE)
        vm_o.call("kernel")
        _, vm_u, _ = _build(UNOPTIMIZED_SOURCE)
        vm_u.call("kernel")
        assert vm_u.clock.blocks > vm_o.clock.blocks


class TestSensitivity:
    def test_rates_are_probabilities(self):
        rng = np.random.default_rng(0)
        s = register_sensitivity(OPTIMIZED_SOURCE, 40, rng)
        assert 0.0 <= s <= 1.0

    def test_optimized_more_sensitive(self):
        """The Springer/paper inference: more live registers -> higher
        register-fault sensitivity."""
        report = register_usage_report(trials=120, seed=5)
        m = report.metrics
        assert m["sensitivity_optimized"] > m["sensitivity_unoptimized"]

    def test_report_text_mentions_both(self):
        report = register_usage_report(trials=30, seed=1)
        assert "optimized" in report.text
        assert "unoptimized" in report.text
        assert m_keys(report) >= {
            "static_optimized",
            "static_unoptimized",
            "sensitivity_optimized",
            "sensitivity_unoptimized",
        }


def m_keys(report):
    return set(report.metrics)
