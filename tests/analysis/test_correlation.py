"""Working-set / error-rate correlation (section 6.1.2)."""

import pytest

from repro.analysis.correlation import correlate_working_set
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.mpi.simulator import JobConfig
from repro.sampling.plans import CampaignPlan
from repro.trace.working_set import trace_memory
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY


@pytest.fixture(scope="module")
def correlation():
    from repro.apps import WavetoyApp

    cfg = JobConfig(nprocs=SMALL_NPROCS)
    factory = lambda: WavetoyApp(**SMALL_WAVETOY)
    report = trace_memory(factory(), cfg)
    campaign = Campaign(
        factory,
        cfg,
        plan=CampaignPlan(per_region={r.value: 8 for r in Region}),
        seed=6,
    )
    result = campaign.run(
        regions=(Region.TEXT, Region.DATA, Region.BSS, Region.HEAP)
    )
    return correlate_working_set(report, result)


class TestCorrelation:
    def test_paper_consistency_claim(self, correlation):
        """Error rates must be bounded by the compute-phase working set
        (a fault outside the working set cannot manifest)."""
        assert correlation.consistent

    def test_fields_populated(self, correlation):
        assert correlation.app_name == "wavetoy"
        assert 0 <= correlation.text_wss_compute <= 100
        assert 0 <= correlation.dbh_error_rate <= 100
        assert "wavetoy" in correlation.text
