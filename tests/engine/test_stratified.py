"""Stratified campaign sampling (``campaign run --stratify``).

The contracts under test:

* determinism - the executed trial set, per-stratum counts and raw
  tallies are bit-identical for any worker count, because every
  allocation decision is a pure function of complete-wave tallies;
* the known-zero masked stratum keeps its population weight but never
  executes a trial (the oracle already proved the outcome);
* the importance-weighted estimate is unbiased (``sum W_h p_h``) and
  reaches the target half-width with far fewer executed trials than
  the uniform Cochran budget;
* the store/resume path applies per wave exactly as in uniform mode.
"""

import pytest

from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.sampling.theory import sample_size_oversampled

APP = "wavetoy"
SEED = 123
TARGET_D = 0.08


def make_campaign(shared_predictor):
    campaign = Campaign.from_registry(APP, nprocs=2, seed=SEED)
    campaign._predictor = shared_predictor  # identical; skip the rebuild
    return campaign


@pytest.fixture(scope="module")
def shared_predictor():
    return Campaign.from_registry(APP, nprocs=2, seed=SEED).outcome_predictor()


@pytest.fixture(scope="module")
def text_row(shared_predictor):
    return make_campaign(shared_predictor).run_region(
        Region.TEXT, target_d=TARGET_D, stratify=True
    )


def cell_view(row):
    return [
        (c.name, c.population, c.executed, c.errors, c.known_zero)
        for c in row.stratified.cells
    ]


class TestDeterminism:
    def test_jobs1_and_jobs4_are_bit_identical(self, shared_predictor, text_row):
        jobs4 = make_campaign(shared_predictor).run_region(
            Region.TEXT, target_d=TARGET_D, stratify=True, jobs=4
        )
        assert cell_view(jobs4) == cell_view(text_row)
        assert jobs4.tally.counts == text_row.tally.counts
        assert jobs4.stratified.error_rate == text_row.stratified.error_rate
        assert jobs4.stratified.half_width == text_row.stratified.half_width


class TestEstimate:
    def test_masked_stratum_has_weight_but_no_trials(self, text_row):
        masked = [c for c in text_row.stratified.cells if c.name == "masked"]
        assert masked and masked[0].known_zero
        assert masked[0].population > 0
        assert masked[0].executed == 0

    def test_rate_is_the_importance_weighted_sum(self, text_row):
        est = text_row.stratified
        expected = sum(est.weight(c) * c.rate for c in est.cells)
        assert est.error_rate == pytest.approx(expected)

    def test_reaches_target_with_a_fraction_of_cochran(self, text_row):
        est = text_row.stratified
        assert est.half_width <= TARGET_D
        uniform_budget = sample_size_oversampled(TARGET_D)
        assert 2 * est.executed <= uniform_budget
        assert text_row.adaptive_d == est.half_width

    def test_agrees_with_the_uniform_estimate(self, shared_predictor, text_row):
        uniform = make_campaign(shared_predictor).run_region(
            Region.TEXT, target_d=TARGET_D
        )
        uniform_rate = uniform.tally.errors / uniform.executions
        diff = abs(text_row.stratified.error_rate - uniform_rate)
        assert diff <= text_row.stratified.half_width + uniform.adaptive_d


class TestBudgetAndResume:
    def test_fixed_budget_is_respected(self, shared_predictor):
        row = make_campaign(shared_predictor).run_region(
            Region.TEXT, 24, stratify=True
        )
        assert row.stratified.executed == row.executions <= 24
        assert sum(c.executed for c in row.stratified.cells) == row.executions

    def test_resume_executes_nothing_and_reproduces(
        self, shared_predictor, tmp_path
    ):
        store = tmp_path / "stratified.jsonl"
        first = make_campaign(shared_predictor).run_region(
            Region.TEXT, 24, stratify=True, store=store
        )
        again = make_campaign(shared_predictor).run_region(
            Region.TEXT, 24, stratify=True, store=store, resume=True
        )
        assert again.resumed == again.executions == first.executions
        assert again.executed == 0  # no trial ran a job the second time
        assert cell_view(again) == cell_view(first)
        assert again.tally.counts == first.tally.counts
