"""The result-store contract, enforced against both backends.

Every behavior a campaign relies on - idempotent append, streaming
iteration, summary parity, resume-skip, torn-write recovery, merge
idempotence, incremental following - must hold identically for the
JSONL file store and the SQLite store, because ``open_store`` makes
them interchangeable behind one path argument.  Each test here is
parametrized over both backends; several also assert cross-backend
parity (the same trials produce byte-identical status rows whichever
backend holds them).
"""

import json
import sqlite3

import pytest

from repro.engine.store import (
    ResultStore,
    StoreSummary,
    is_sqlite_path,
    merge_stores,
    open_store,
)
from repro.engine.store_sqlite import SQLiteResultStore
from repro.injection.outcomes import Manifestation
from tests.engine.test_trial_store import make_result

BACKENDS = ("jsonl", "sqlite")

SUFFIX = {"jsonl": ".jsonl", "sqlite": ".sqlite"}


def path_for(tmp_path, backend, name="s"):
    return tmp_path / f"{name}{SUFFIX[backend]}"


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def fill(store, results):
    for result in results:
        store.append(result)
    return store


def three_results():
    return [
        make_result(0, Manifestation.CORRECT),
        make_result(1, Manifestation.CRASH),
        make_result(2, Manifestation.HANG),
    ]


class TestBackendSelection:
    def test_suffix_selects_backend(self, tmp_path):
        assert isinstance(open_store(tmp_path / "a.jsonl"), ResultStore)
        for suffix in (".sqlite", ".sqlite3", ".db"):
            assert isinstance(
                open_store(tmp_path / f"a{suffix}"), SQLiteResultStore
            )

    def test_magic_sniff_beats_neutral_suffix(self, tmp_path):
        """A SQLite database under a non-standard name still opens with
        the SQLite backend: the file magic decides."""
        path = tmp_path / "store.results"
        with SQLiteResultStore(path) as store:
            store.append(make_result(0))
        assert is_sqlite_path(path)
        reopened = open_store(path)
        assert isinstance(reopened, SQLiteResultStore)
        assert len(reopened.load()) == 1

    def test_store_instances_pass_through(self, tmp_path):
        for name in ("a.jsonl", "a.sqlite"):
            store = open_store(tmp_path / name)
            assert open_store(store) is store


class TestContract:
    def test_append_load_dedup(self, tmp_path, backend):
        with open_store(path_for(tmp_path, backend)) as store:
            fill(store, [make_result(0), make_result(1), make_result(0)])
        loaded = open_store(path_for(tmp_path, backend)).load()
        assert len(loaded) == 2
        assert {r.index for r in loaded.values()} == {0, 1}

    def test_iter_results_matches_load(self, tmp_path, backend):
        with open_store(path_for(tmp_path, backend)) as store:
            fill(store, three_results())
        store = open_store(path_for(tmp_path, backend))
        streamed = list(store.iter_results())
        assert [r.index for r in streamed] == [0, 1, 2]  # insertion order
        loaded = store.load()
        assert {r.key for r in streamed} == loaded.keys()
        assert all(r.resumed for r in streamed)

    def test_load_missing_file(self, tmp_path, backend):
        assert open_store(path_for(tmp_path, backend, "absent")).load() == {}
        assert open_store(path_for(tmp_path, backend, "absent")).status() == []

    def test_status_parity_across_backends(self, tmp_path):
        """The acceptance check: the same trials summarize to
        byte-identical status rows whichever backend holds them."""
        rows = {}
        for backend in BACKENDS:
            with open_store(path_for(tmp_path, backend)) as store:
                fill(store, three_results())
            rows[backend] = [
                s.to_json()
                for s in open_store(path_for(tmp_path, backend)).status()
            ]
        assert rows["jsonl"] == rows["sqlite"]
        assert rows["jsonl"][0]["trials"] == 3
        assert rows["jsonl"][0]["errors"] == 2

    def test_resume_skip(self, tmp_path, backend):
        """``load()`` marks every rehydrated trial resumed - the flag
        the engine's resume path keys on to skip re-execution."""
        with open_store(path_for(tmp_path, backend)) as store:
            fill(store, [make_result(0), make_result(1)])
        loaded = open_store(path_for(tmp_path, backend)).load()
        assert all(r.resumed for r in loaded.values())
        assert make_result(0).key in loaded
        assert make_result(7).key not in loaded

    def test_torn_write_recovery(self, tmp_path, backend):
        """A crash mid-append loses at most the in-flight trial: a torn
        JSONL line, or an abandoned SQLite transaction rolled back on
        close.  Either way the complete records read back clean."""
        path = path_for(tmp_path, backend)
        with open_store(path) as store:
            fill(store, [make_result(0), make_result(1)])
        if backend == "jsonl":
            with open(path, "a") as fh:
                fh.write('{"key": "torn-in-fligh')  # no newline, cut JSON
        else:
            orphan = make_result(2)
            conn = sqlite3.connect(path)
            conn.execute("BEGIN")
            conn.execute(
                "INSERT INTO trials (key, app, region, idx, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                (orphan.key, orphan.app, orphan.region.value, orphan.index,
                 json.dumps(orphan.to_json(), sort_keys=True)),
            )
            conn.close()  # crash stand-in: uncommitted work rolls back
        loaded = open_store(path).load()
        assert len(loaded) == 2
        assert {r.index for r in loaded.values()} == {0, 1}

    def test_merge_idempotent_and_sorted(self, tmp_path, backend):
        """Merging twice (and merging a merge) lands the same sorted,
        deduplicated trial set, regardless of the input backend mix."""
        a = path_for(tmp_path, "jsonl", "a")
        b = path_for(tmp_path, "sqlite", "b")
        with open_store(a) as store:
            fill(store, [make_result(1), make_result(0)])
        with open_store(b) as store:
            fill(store, [make_result(1), make_result(2)])
        out = path_for(tmp_path, backend, "merged")
        assert merge_stores([a, b], out) == 3
        assert merge_stores([a, b], out) == 3  # rewrite, not accumulate
        once = [r.key for r in open_store(out).iter_results()]
        again = path_for(tmp_path, backend, "merged2")
        assert merge_stores([out], again) == 3
        assert [r.key for r in open_store(again).iter_results()] == once
        assert [
            r.index for r in open_store(out).iter_results()
        ] == [0, 1, 2]

    def test_multi_writer_idempotent_appends(self, tmp_path, backend):
        """Two store handles appending overlapping trial sets - the
        distributed coordinator scenario - land each key once."""
        path = path_for(tmp_path, backend)
        first = open_store(path)
        second = open_store(path)
        fill(first, [make_result(0), make_result(1)])
        fill(second, [make_result(1), make_result(2)])
        first.close()
        second.close()
        loaded = open_store(path).load()
        assert {r.index for r in loaded.values()} == {0, 1, 2}

    def test_follower_incremental_and_reset(self, tmp_path, backend):
        path = path_for(tmp_path, backend)
        store = open_store(path)
        follower = store.follower()
        results, reset = follower.poll()
        assert results == [] and reset is False

        store.append(make_result(0))
        store.append(make_result(1))
        results, reset = follower.poll()
        assert [r.index for r in results] == [0, 1] and reset is False

        results, reset = follower.poll()  # nothing new
        assert results == [] and reset is False

        store.append(make_result(2, Manifestation.CRASH))
        results, reset = follower.poll()
        assert [r.index for r in results] == [2] and reset is False
        store.close()

        # Rewrite the store smaller: the follower must report a reset
        # and replay from the start.
        if backend == "jsonl":
            path.write_text("")
        else:
            conn = sqlite3.connect(path)
            conn.execute("DELETE FROM trials")
            conn.commit()
            conn.close()
        with open_store(path) as store:
            store.append(make_result(5))
        results, reset = follower.poll()
        assert reset is True
        assert [r.index for r in results] == [5]


class TestSummaryParity:
    def test_fold_matches_bulk(self, tmp_path, backend):
        with open_store(path_for(tmp_path, backend)) as store:
            fill(store, three_results())
        store = open_store(path_for(tmp_path, backend))
        incremental = StoreSummary()
        for result in store.iter_results():
            incremental.add(result)
        bulk = StoreSummary.from_results(store.load().values())
        assert [r.to_json() for r in incremental.rows()] == [
            r.to_json() for r in bulk.rows()
        ]
