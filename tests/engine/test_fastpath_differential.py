"""PR 5-style differential gate for ``--fastpath`` (PR 8 acceptance).

The translated engine must be *observationally invisible*: campaign
tallies, stored trial records (manifestation, latency, injection
instants), ``status --json`` payloads, and the engine's metric series
are bit-identical with and without ``--fastpath``, serial and parallel,
on every suite application.  Only throughput (and the fastpath-only
counters) may differ."""

import pytest

from repro.engine.store import ResultStore
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.observability.metrics import MetricsRegistry, render_prometheus

SEED = 20040607
N = 4
REGIONS = (Region.TEXT, Region.DATA, Region.REGULAR_REG)
APPS = ("wavetoy", "moldyn", "climate")


def run_campaign(app, tmp_path, *, fastpath, jobs):
    store_path = (
        tmp_path / f"{app}-{'fp' if fastpath else 'interp'}-j{jobs}.jsonl"
    )
    metrics = MetricsRegistry()
    campaign = Campaign.from_registry(app, nprocs=2, seed=SEED)
    with ResultStore(store_path) as store:
        result = campaign.run(
            REGIONS,
            N,
            jobs=jobs,
            store=store,
            metrics=metrics,
            fastpath=fastpath,
        )
    records = sorted(store_path.read_text().splitlines())
    status = [
        (s.app, s.region, s.trials, s.errors, s.manifestations, s.pruned)
        for s in ResultStore(store_path).status()
    ]
    tallies = {
        region.value: (
            row.tally.as_dict()
            if hasattr(row.tally, "as_dict")
            else vars(row.tally)
        )
        for region, row in result.regions.items()
    }
    # Drop run-dependent series (per-worker pids) and the deliberately
    # fastpath-only counters; everything else must match bit for bit -
    # including the VM instruction/block totals, which pin the two
    # engines to identical dynamic execution, not just identical
    # verdicts.
    series = "\n".join(
        line
        for line in render_prometheus(metrics).splitlines()
        if "worker=" not in line and "fastpath" not in line
    )
    return records, status, tallies, series


@pytest.mark.parametrize("jobs", [1, 4])
@pytest.mark.parametrize("app", APPS)
def test_fastpath_is_observationally_invisible(app, jobs, tmp_path):
    interp = run_campaign(app, tmp_path, fastpath=False, jobs=jobs)
    fast = run_campaign(app, tmp_path, fastpath=True, jobs=jobs)
    assert interp[0] == fast[0], "stored trial records differ"
    assert interp[1] == fast[1], "status payloads differ"
    assert interp[2] == fast[2], "region tallies differ"
    assert interp[3] == fast[3], "metric series differ"
