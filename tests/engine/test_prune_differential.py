"""Differential test for ``--prune-masked``: a pruned campaign must
reproduce the full campaign's statistics while executing fewer trials,
and pruned trials must round-trip through the result store."""

import pytest

from repro.engine.driver import observed_half_width
from repro.engine.store import ResultStore
from repro.injection.campaign import Campaign
from repro.injection.faults import Region

APP = "wavetoy"
SEED = 123
N = 10
REGIONS = (Region.TEXT, Region.DATA)


@pytest.fixture(scope="module")
def full_and_pruned():
    full = Campaign.from_registry(APP, nprocs=2, seed=SEED).run(REGIONS, N)
    pruned = Campaign.from_registry(APP, nprocs=2, seed=SEED).run(
        REGIONS, N, prune_masked=True
    )
    return full, pruned


class TestDifferential:
    @pytest.mark.parametrize("region", REGIONS, ids=lambda r: r.value)
    def test_trial_counts_match(self, full_and_pruned, region):
        full, pruned = full_and_pruned
        assert full.row(region).executions == N
        assert pruned.row(region).executions == N

    def test_pruning_actually_prunes(self, full_and_pruned):
        full, pruned = full_and_pruned
        assert all(full.row(r).pruned == 0 for r in REGIONS)
        total_pruned = sum(pruned.row(r).pruned for r in REGIONS)
        assert total_pruned > 0
        # pruned trials are the ones that did not execute
        for r in REGIONS:
            row = pruned.row(r)
            assert row.executed == N - row.pruned

    @pytest.mark.parametrize("region", REGIONS, ids=lambda r: r.value)
    def test_rates_within_cochran_half_width(self, full_and_pruned, region):
        full, pruned = full_and_pruned
        p_full = full.row(region).error_rate_percent / 100.0
        p_pruned = pruned.row(region).error_rate_percent / 100.0
        d = observed_half_width(full.row(region).tally.errors, N)
        assert abs(p_full - p_pruned) <= d

    @pytest.mark.parametrize("region", REGIONS, ids=lambda r: r.value)
    def test_tallied_rate_is_the_stratified_estimator(
        self, full_and_pruned, region
    ):
        from repro.sampling.theory import stratified_error_rate

        _, pruned = full_and_pruned
        row = pruned.row(region)
        expected = stratified_error_rate(
            row.tally.errors, row.executed, row.pruned, pruned_rate=0.0
        )
        assert row.error_rate_percent / 100.0 == pytest.approx(expected)

    @pytest.mark.parametrize("region", REGIONS, ids=lambda r: r.value)
    def test_same_seed_same_errors(self, full_and_pruned, region):
        # stronger than the statistical bound: with the same seed the
        # sampled specs are identical, and the oracle is sound, so the
        # synthetic CORRECT verdicts match what execution would produce
        full, pruned = full_and_pruned
        assert (
            full.row(region).tally.errors == pruned.row(region).tally.errors
        )


class TestStoreRoundTrip:
    def test_pruned_trials_persist_and_resume_as_resumed(self, tmp_path):
        path = tmp_path / "trials.jsonl"
        first_run = Campaign.from_registry(APP, nprocs=2, seed=SEED)
        with ResultStore(path) as store:
            first = first_run.run(
                (Region.TEXT,), N, store=store, prune_masked=True
            )
        row = first.row(Region.TEXT)
        assert row.pruned > 0

        status = ResultStore(path).status()
        assert len(status) == 1
        assert status[0].trials == N
        assert status[0].pruned == row.pruned

        # resuming from the store executes nothing: every trial - the
        # pruned ones included - rehydrates, and rehydrated trials count
        # as resumed, not pruned
        second_run = Campaign.from_registry(APP, nprocs=2, seed=SEED)
        with ResultStore(path) as store:
            second = second_run.run(
                (Region.TEXT,),
                N,
                store=store,
                resume=True,
                prune_masked=True,
            )
        row2 = second.row(Region.TEXT)
        assert row2.resumed == N
        assert row2.executed == 0
        assert row2.pruned == 0
        assert row2.tally.errors == row.tally.errors
