"""Campaign-engine behaviour: determinism across executors, resume,
adaptive sampling, record retention, and progress callbacks.

The parallel tests use a module-level factory (picklable by reference)
so trials can cross process boundaries.
"""

import functools

import pytest

from repro.apps import WavetoyApp
from repro.engine import ResultStore
from repro.engine.driver import observed_half_width
from repro.engine.executors import ParallelExecutor
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.mpi.simulator import JobConfig
from repro.sampling.plans import CampaignPlan
from repro.sampling.theory import sample_size_oversampled
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY

#: Regions exercised by the cross-executor tests (kept small for speed;
#: message/heap/regular cover the channel, memory and register paths).
REGIONS = (Region.REGULAR_REG, Region.HEAP, Region.MESSAGE)
N_PER_REGION = 3

small_factory = functools.partial(WavetoyApp, **SMALL_WAVETOY)


def small_campaign(seed=3, n=N_PER_REGION):
    return Campaign(
        small_factory,
        JobConfig(nprocs=SMALL_NPROCS),
        plan=CampaignPlan(per_region={r.value: n for r in Region}),
        seed=seed,
        app_params=SMALL_WAVETOY,
    )


def tallies(result):
    return {
        region: (row.tally.counts, row.delivered)
        for region, row in result.regions.items()
    }


class TestDeterminism:
    def test_jobs1_jobs4_and_serial_identical(self):
        serial = small_campaign().run(REGIONS)
        jobs1 = small_campaign().run(REGIONS, jobs=1)
        jobs4 = small_campaign().run(REGIONS, jobs=4)
        assert tallies(serial) == tallies(jobs1) == tallies(jobs4)

    def test_parallel_region_matches_serial_records(self):
        """With ``keep_records=True`` the parallel engine reproduces the
        serial record list exactly (same order, same outcomes)."""
        serial = small_campaign().run_region(Region.MESSAGE, 4)
        parallel = small_campaign().run_region(
            Region.MESSAGE, 4, jobs=2, keep_records=True
        )
        assert [(s, m) for s, _, m in serial.records] == [
            (s, m) for s, _, m in parallel.records
        ]

    def test_unpicklable_factory_fails_loudly(self):
        campaign = Campaign(
            lambda: WavetoyApp(**SMALL_WAVETOY),
            JobConfig(nprocs=SMALL_NPROCS),
            plan=CampaignPlan(per_region={r.value: 2 for r in Region}),
        )
        with pytest.raises(TypeError, match="picklable"):
            campaign.run_region(Region.HEAP, 2, jobs=2)

    def test_parallel_executor_rejects_single_job(self):
        with pytest.raises(ValueError):
            ParallelExecutor(small_campaign().execution_context(), jobs=1)


class TestRecordsRetention:
    def test_serial_fixed_n_keeps_records_by_default(self):
        row = small_campaign().run_region(Region.HEAP, 3)
        assert len(row.records) == 3

    def test_parallel_drops_records_by_default(self):
        row = small_campaign().run_region(Region.HEAP, 3, jobs=2)
        assert row.records == []
        assert row.executions == 3  # tallies survive

    def test_adaptive_drops_records_by_default(self):
        row = small_campaign().run_region(Region.HEAP, target_d=0.5, batch=2)
        assert row.records == []

    def test_explicit_opt_out(self):
        row = small_campaign().run_region(Region.HEAP, 3, keep_records=False)
        assert row.records == []
        assert row.executions == 3


class TestResume:
    def test_resume_executes_only_missing_trials(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        small_campaign().run_region(Region.MESSAGE, 2, store=store)
        assert sum(1 for _ in open(store)) == 2

        resumed = small_campaign().run_region(
            Region.MESSAGE, 5, store=store, resume=True
        )
        assert resumed.resumed == 2
        assert resumed.executions == 5
        assert sum(1 for _ in open(store)) == 5

        uninterrupted = small_campaign().run_region(Region.MESSAGE, 5)
        assert resumed.tally.counts == uninterrupted.tally.counts
        assert resumed.delivered == uninterrupted.delivered

    def test_full_resume_executes_nothing(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        first = small_campaign().run(REGIONS, store=store)
        again = small_campaign().run(REGIONS, store=store, resume=True)
        assert tallies(first) == tallies(again)
        assert all(row.resumed == row.executions for row in again.regions.values())

    def test_resume_ignores_other_campaigns(self, tmp_path):
        """Keys embed app/params/seeds: a store from one campaign never
        satisfies another."""
        store = tmp_path / "campaign.jsonl"
        small_campaign(seed=3).run_region(Region.MESSAGE, 3, store=store)
        other = small_campaign(seed=4).run_region(
            Region.MESSAGE, 3, store=store, resume=True
        )
        assert other.resumed == 0

    def test_resume_reruns_trial_lost_to_truncated_line(self, tmp_path):
        """A write cut short mid-line (the crash --resume exists for)
        costs exactly that one trial: the loader skips the partial
        record and resume re-executes it, with no crash and no
        double-count."""
        store = tmp_path / "campaign.jsonl"
        small_campaign().run_region(Region.MESSAGE, 3, store=store)
        lines = store.read_text().splitlines()
        assert len(lines) == 3
        store.write_text("\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2])

        resumed = small_campaign().run_region(
            Region.MESSAGE, 3, store=store, resume=True
        )
        assert resumed.resumed == 2
        assert resumed.executions == 3
        assert len(ResultStore(store).load()) == 3

        uninterrupted = small_campaign().run_region(Region.MESSAGE, 3)
        assert resumed.tally.counts == uninterrupted.tally.counts
        assert resumed.delivered == uninterrupted.delivered

    def test_without_resume_flag_store_entries_unused(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        small_campaign().run_region(Region.MESSAGE, 2, store=store)
        row = small_campaign().run_region(Region.MESSAGE, 2, store=store)
        assert row.resumed == 0
        # Re-execution appends duplicates; loaders dedup by key.
        assert sum(1 for _ in open(store)) == 4
        assert len(ResultStore(store).load()) == 2


class TestAdaptive:
    def test_stops_once_target_reached(self):
        row = small_campaign().run_region(Region.MESSAGE, target_d=0.5, batch=2)
        assert row.executions >= 2
        assert row.adaptive_d is not None
        assert row.adaptive_d <= 0.5

    def test_capped_by_oversampling_bound(self):
        cap = 4
        row = small_campaign().run_region(
            Region.MESSAGE, target_d=0.01, batch=3, max_n=cap
        )
        assert row.executions == cap

    def test_default_cap_is_cochran(self):
        target = 0.3
        campaign = small_campaign()
        row = campaign.run_region(Region.MESSAGE, target_d=target, batch=4)
        assert row.executions <= sample_size_oversampled(target)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            small_campaign().run_region(Region.MESSAGE, target_d=1.5)

    def test_half_width_properties(self):
        assert observed_half_width(0, 0) == float("inf")
        # clamped away from the degenerate p = 0 endpoint
        assert observed_half_width(0, 10) > 0
        # more trials, tighter interval
        assert observed_half_width(5, 100) < observed_half_width(2, 40)


class TestProgress:
    def test_events_fire_each_interval_and_at_end(self):
        events = []
        small_campaign().run_region(
            Region.MESSAGE, 4, progress=events.append, log_interval=2
        )
        # One periodic event at done=2, one final at done=4.  (The last
        # trial's periodic emission is suppressed: it would duplicate
        # the region-complete event when log_interval divides n.)
        assert [e.done for e in events] == [2, 4]
        assert [e.final for e in events] == [False, True]
        assert all(e.region == "message" and e.app == "wavetoy" for e in events)
        assert events[-1].planned == 4
        assert events[-1].achieved_d > 0

    def test_legacy_callback_and_metrics_never_double_fire_final(self):
        """Regression: with the deprecated callback shim AND a metrics
        registry attached, a region whose trial count is a multiple of
        log_interval used to get two done=n events (periodic + final).
        Both sinks must now see exactly one."""
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        events = []
        small_campaign().run_region(
            Region.MESSAGE, 4, progress=events.append, log_interval=2,
            metrics=registry,
        )
        finals = [e for e in events if e.final]
        assert len(finals) == 1
        assert finals[0].done == 4
        assert [e.done for e in events] == [2, 4]
        emitted = registry.counter_value(
            "repro_campaign_progress_events_total",
            app="wavetoy", region="message",
        )
        assert emitted == len(events) == 2

    def test_interval_one_fires_once_per_trial_single_final(self):
        events = []
        small_campaign().run_region(
            Region.MESSAGE, 4, progress=events.append, log_interval=1
        )
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert [e.final for e in events] == [False, False, False, True]

    def test_emitter_swallows_duplicate_final(self):
        from repro.engine.progress import ProgressEmitter, ProgressEvent

        events = []
        emitter = ProgressEmitter(callback=events.append, log_interval=1)
        final = ProgressEvent(
            app="a", region="r", done=4, planned=4, resumed=0,
            errors=1, achieved_d=0.5, final=True,
        )
        emitter.emit(final)
        emitter.emit(final)
        assert [e.final for e in events] == [True]
        periodic = ProgressEvent(
            app="a", region="r", done=2, planned=4, resumed=0,
            errors=0, achieved_d=0.7,
        )
        emitter.emit(periodic)
        emitter.emit(periodic)  # periodic events are never deduplicated
        assert len(events) == 3

    def test_resumed_counts_visible(self, tmp_path):
        store = tmp_path / "campaign.jsonl"
        small_campaign().run_region(Region.MESSAGE, 2, store=store)
        events = []
        small_campaign().run_region(
            Region.MESSAGE, 4, store=store, resume=True,
            progress=events.append, log_interval=1,
        )
        assert events[-1].resumed == 2
        assert events[-1].done == 4
