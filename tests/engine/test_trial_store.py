"""TrialSpec/TrialResult identity, pickling, and the JSONL ResultStore."""

import json
import pickle

import numpy as np
import pytest

from repro.engine.store import ResultStore
from repro.engine.trial import (
    TrialResult,
    TrialSpec,
    canonical_params,
    region_salt,
    restore_rng,
    trial_key,
    trial_rng,
)
from repro.injection.faults import FaultSpec, Region
from repro.injection.outcomes import Manifestation


def make_spec(index=0, region=Region.HEAP, seed=7):
    rng = trial_rng(seed, region, index)
    fault = FaultSpec(region, rank=int(rng.integers(4)), time_blocks=5, bit=3)
    return TrialSpec(
        app="wavetoy",
        app_params=canonical_params({"nx": 32, "ny": 8}),
        nprocs=4,
        config_seed=12345,
        campaign_seed=seed,
        region=region,
        index=index,
        fault=fault,
        rng_state=rng.bit_generator.state,
    )


def make_result(index=0, manifestation=Manifestation.CORRECT, app="wavetoy"):
    spec = make_spec(index)
    return TrialResult(
        key=spec.key,
        app=app,
        region=spec.region,
        index=index,
        manifestation=manifestation,
        delivered=True,
        detail="chunk",
    )


class TestTrialSpec:
    def test_pickle_round_trip(self):
        spec = make_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.key == spec.key

    def test_rng_state_round_trip(self):
        rng = trial_rng(11, Region.STACK, 3)
        expected = rng.integers(1 << 30)
        restored = restore_rng(trial_rng(11, Region.STACK, 3).bit_generator.state)
        assert restored.integers(1 << 30) == expected

    def test_key_stable(self):
        assert make_spec(index=2).key == make_spec(index=2).key

    def test_key_distinguishes_every_identity_field(self):
        base = make_spec().key
        assert trial_key("moldyn", {"nx": 32, "ny": 8}, 4, 12345, 7,
                         Region.HEAP, 0) != base
        assert trial_key("wavetoy", {"nx": 64, "ny": 8}, 4, 12345, 7,
                         Region.HEAP, 0) != base
        assert trial_key("wavetoy", {"nx": 32, "ny": 8}, 8, 12345, 7,
                         Region.HEAP, 0) != base
        assert trial_key("wavetoy", {"nx": 32, "ny": 8}, 4, 54321, 7,
                         Region.HEAP, 0) != base
        assert trial_key("wavetoy", {"nx": 32, "ny": 8}, 4, 12345, 8,
                         Region.HEAP, 0) != base
        assert trial_key("wavetoy", {"nx": 32, "ny": 8}, 4, 12345, 7,
                         Region.STACK, 0) != base
        assert trial_key("wavetoy", {"nx": 32, "ny": 8}, 4, 12345, 7,
                         Region.HEAP, 1) != base

    def test_key_ignores_param_order(self):
        assert trial_key("w", {"a": 1, "b": 2}, 4, 1, 2, Region.HEAP, 0) == \
            trial_key("w", {"b": 2, "a": 1}, 4, 1, 2, Region.HEAP, 0)

    def test_region_salt_is_crc_not_hash(self):
        import zlib

        assert region_salt(Region.MESSAGE) == zlib.crc32(b"message")


class TestTrialResultJson:
    def test_round_trip(self):
        result = make_result(manifestation=Manifestation.CRASH)
        clone = TrialResult.from_json(result.to_json())
        assert clone.key == result.key
        assert clone.manifestation is Manifestation.CRASH
        assert clone.delivered is True
        assert clone.detail == "chunk"
        assert clone.resumed is True
        assert clone.record is None


class TestResultStore:
    def test_append_load_dedup(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            store.append(make_result(0))
            store.append(make_result(1, Manifestation.HANG))
            store.append(make_result(0))  # duplicate key
        loaded = ResultStore(path).load()
        assert len(loaded) == 2
        assert sum(1 for _ in open(path)) == 3

    def test_load_tolerates_truncated_line(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            store.append(make_result(0))
        with open(path, "a") as fh:
            fh.write('{"key": "cut-short", "app": "wav')  # interrupted write
        assert len(ResultStore(path).load()) == 1

    def test_load_missing_file(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").load() == {}

    def test_load_skips_valid_json_of_wrong_shape(self, tmp_path):
        """Lines that parse as JSON but are not trial records (a bare
        number, a list, a string, an empty object) are corrupt records:
        skip them, never crash, never double-count."""
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            store.append(make_result(0))
        with open(path, "a") as fh:
            for junk in ("123", "[1, 2]", '"x"', "{}", "null"):
                fh.write(junk + "\n")
        loaded = ResultStore(path).load()
        assert len(loaded) == 1
        assert next(iter(loaded.values())).index == 0

    def test_status_groups_and_counts(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            store.append(make_result(0, Manifestation.CORRECT))
            store.append(make_result(1, Manifestation.CRASH))
            store.append(make_result(2, Manifestation.HANG))
        (status,) = ResultStore(path).status()
        assert (status.app, status.region) == ("wavetoy", "heap")
        assert status.trials == 3
        assert status.errors == 2
        assert status.error_rate_percent == pytest.approx(200 / 3)
        assert status.achieved_d_percent > 0

    def test_merge_dedups_and_sorts(self, tmp_path):
        a, b, out = tmp_path / "a.jsonl", tmp_path / "b.jsonl", tmp_path / "m.jsonl"
        with ResultStore(a) as store:
            store.append(make_result(1))
            store.append(make_result(0))
        with ResultStore(b) as store:
            store.append(make_result(1))
            store.append(make_result(2))
        assert ResultStore.merge([a, b], out) == 3
        rows = [json.loads(line) for line in open(out)]
        assert [r["index"] for r in rows] == [0, 1, 2]


class TestStreamingStatus:
    """``iter_results`` / the streaming ``status()`` (ISSUE 9): exact
    tally parity with full ``load()`` at a fraction of the memory."""

    def _mixed_store(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with ResultStore(path) as store:
            store.append(make_result(0, Manifestation.CORRECT))
            store.append(make_result(1, Manifestation.CRASH))
            store.append(make_result(2, Manifestation.HANG))
            store.append(make_result(1, Manifestation.CRASH))  # duplicate
        with open(path, "a") as fh:
            fh.write('{"key": "torn-in-fligh')  # interrupted append
        return path

    def test_iter_results_matches_load(self, tmp_path):
        path = self._mixed_store(tmp_path)
        streamed = {r.key: r for r in ResultStore(path).iter_results()}
        loaded = ResultStore(path).load()
        assert streamed.keys() == loaded.keys()
        for key, result in streamed.items():
            assert result.manifestation is loaded[key].manifestation
            assert result.resumed is True

    def test_status_identical_streaming_vs_full_load(self, tmp_path):
        """The acceptance check: ``campaign status`` built by streaming
        equals a fold over the fully-loaded store, row for row."""
        from repro.engine.store import StoreSummary

        path = self._mixed_store(tmp_path)
        streaming = ResultStore(path).status()
        full = StoreSummary.from_results(
            ResultStore(path).load().values()
        ).rows()
        assert [s.to_json() for s in streaming] == [s.to_json() for s in full]

    def test_streaming_memory_bounded(self, tmp_path):
        """Peak memory of the streaming fold must not scale with the
        per-record payload the way ``load()`` does."""
        import dataclasses
        import tracemalloc

        path = tmp_path / "big.jsonl"
        with ResultStore(path) as store:
            for i in range(1500):
                store.append(
                    dataclasses.replace(make_result(i), detail="x" * 2048)
                )

        tracemalloc.start()
        ResultStore(path).status()
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        loaded = ResultStore(path).load()
        _, load_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(loaded) == 1500

        # load() retains every parsed record (~2KB of detail each);
        # streaming retains seen keys and per-region counters only.
        assert stream_peak < load_peak / 3
