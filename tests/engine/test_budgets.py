"""Regression tests pinning every hang-budget call site to the one
formula home (`repro.engine.budgets`).

The formula used to live twice - in ``ReferenceProfile`` and inline in
``run_with_fault`` - and the copies drifted (the runner added the
+300/+2000 slack terms, the campaign originally did not).  These tests
fail if either call site grows its own arithmetic again.
"""

import pytest

from repro.engine import budgets
from repro.engine.core import ExecutionContext
from repro.injection.campaign import (
    BLOCK_BUDGET_FACTOR,
    ROUND_BUDGET_FACTOR,
    ReferenceProfile,
)
from repro.mpi.simulator import JobConfig, JobResult, JobStatus


def fake_result(rounds=120, blocks=(900, 1000, 950)):
    return JobResult(
        status=JobStatus.COMPLETED,
        detail="",
        stdout=[],
        stderr=[],
        outputs={},
        rounds=rounds,
        blocks_per_rank=list(blocks),
    )


class TestFormula:
    def test_round_budget(self):
        assert budgets.round_budget(100) == int(100 * 3.0) + 300
        assert budgets.round_budget(0) == 300

    def test_block_budget(self):
        assert budgets.block_budget(1000) == int(1000 * 2.5) + 2000
        assert budgets.block_budget(0) == 2000

    def test_hang_budgets_pair(self):
        assert budgets.hang_budgets(100, [10, 40, 20]) == (
            budgets.round_budget(100),
            budgets.block_budget(40),
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            budgets.round_budget(-1)
        with pytest.raises(ValueError):
            budgets.block_budget(-1)


class TestCallSites:
    def test_campaign_aliases_are_the_engine_constants(self):
        assert BLOCK_BUDGET_FACTOR == budgets.HANG_BLOCK_FACTOR
        assert ROUND_BUDGET_FACTOR == budgets.HANG_ROUND_FACTOR

    def test_reference_profile_delegates(self):
        profile = ReferenceProfile(
            result=None,
            blocks_per_rank=[900, 1000, 950],
            received_bytes_per_rank=[0, 0, 0],
            rounds=120,
            dictionary=None,
        )
        assert profile.round_limit == budgets.round_budget(120)
        assert profile.block_limit == budgets.block_budget(1000)

    def test_execution_context_delegates(self):
        """``run_with_fault`` builds its context through
        ``ExecutionContext.from_reference``; its budgets must come from
        the same formulas the campaign uses."""
        reference = fake_result()
        ctx = ExecutionContext.from_reference(
            lambda: object(), JobConfig(nprocs=3), reference
        )
        assert ctx.round_limit == budgets.round_budget(reference.rounds)
        assert ctx.block_limit == budgets.block_budget(1000)

    def test_both_call_sites_agree(self):
        """Campaign profile and runner context produce identical budgets
        from the same fault-free measurements."""
        reference = fake_result(rounds=77, blocks=(123, 456))
        profile = ReferenceProfile(
            result=reference,
            blocks_per_rank=list(reference.blocks_per_rank),
            received_bytes_per_rank=[0, 0],
            rounds=reference.rounds,
            dictionary=None,
        )
        ctx = ExecutionContext.from_reference(
            lambda: object(), JobConfig(nprocs=2), reference
        )
        assert (ctx.round_limit, ctx.block_limit) == (
            profile.round_limit,
            profile.block_limit,
        )
