"""The distributed coordination layer: lease bookkeeping, the
coordinator's fold, and end-to-end worker equivalence.

The load-bearing claim mirrors the executor suite's: a campaign run by
a coordinator and any number of workers produces region tallies (and a
store) bit-identical to the same campaign run locally.  The LeaseBook
units pin the state machine with an explicit clock; the integration
test runs a real coordinator HTTP service against two in-process
workers and compares against a local ``jobs=2`` run.
"""

import json

import pytest

from repro.engine.coordination import (
    CampaignCoordinator,
    CoordinatorService,
    LeaseBook,
    WorkerClient,
    coordinator_url,
)
from repro.engine.trial import TrialResult
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.injection.outcomes import Manifestation
from repro.observability.serve import TelemetryHub, TelemetryServer
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY

REGIONS = (Region.MESSAGE, Region.STACK)
N = 6


def small_campaign():
    return Campaign.from_registry(
        "wavetoy", nprocs=SMALL_NPROCS, app_params=SMALL_WAVETOY
    )


@pytest.fixture(scope="module")
def reference():
    """The local-run baseline: same campaign, ``jobs=2``, no store."""
    return small_campaign().run(REGIONS, N, jobs=2, checkpoint_stride=None)


class TestLeaseBook:
    def test_grants_lowest_pending_once(self):
        book = LeaseBook([0, 1, 2], lease_timeout=10.0)
        assert book.lease("a", now=0.0) == 0
        assert book.lease("b", now=1.0) == 1
        assert book.lease("c", now=2.0) == 2
        assert book.lease("d", now=3.0) is None  # all leased, none expired
        assert (book.pending, book.leased, book.done) == (0, 3, 0)

    def test_expiry_requeues_and_regrants(self):
        book = LeaseBook([0], lease_timeout=10.0)
        assert book.lease("a", now=0.0) == 0
        assert book.lease("b", now=9.9) is None  # within the window
        assert book.lease("b", now=10.0) == 0  # deadline passed
        assert book.requeues == 1

    def test_ack_idempotent_and_late(self):
        book = LeaseBook([0, 1], lease_timeout=5.0)
        book.lease("a", now=0.0)
        assert book.ack(0, now=1.0) is True
        assert book.ack(0, now=2.0) is False
        # A presumed-dead worker's late ack (post-expiry, post-regrant)
        # still completes the batch.
        book.lease("b", now=0.0)  # batch 1
        book.expire(now=100.0)
        assert book.lease("c", now=100.0) == 1
        assert book.ack(1, now=101.0) is True
        assert book.all_done

    def test_done_batches_never_regrant(self):
        book = LeaseBook([0], lease_timeout=1.0)
        book.lease("a", now=0.0)
        book.ack(0, now=0.5)
        assert book.lease("b", now=100.0) is None
        assert book.requeues == 0

    def test_snapshot_accounting(self):
        book = LeaseBook([0, 1, 2], lease_timeout=10.0)
        book.lease("a", now=0.0)
        book.ack(0, now=1.0)
        book.lease("b", now=2.0)
        snap = book.snapshot(now=4.0)
        assert (snap["pending"], snap["leased"], snap["done"]) == (1, 1, 1)
        (lease,) = snap["leases"]
        assert lease["worker"] == "b"
        assert lease["expires_in"] == pytest.approx(8.0)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            LeaseBook([0], lease_timeout=0.0)


class TestCoordinatorProtocol:
    """Planning, lease payloads and submission validation - no trial is
    ever executed here, so these run on a bare engine."""

    def _coordinator(self, clock=None, **kwargs):
        engine = small_campaign().engine(telemetry=TelemetryHub())
        kwargs.setdefault("batch_size", 4)
        if clock is not None:
            kwargs["clock"] = clock
        return CampaignCoordinator(engine, REGIONS, N, **kwargs)

    def _result_for(self, coordinator, spec):
        return TrialResult(
            key=spec.key,
            app=spec.app,
            region=spec.region,
            index=spec.index,
            manifestation=Manifestation.CORRECT,
            delivered=True,
        )

    def test_batches_partition_all_specs(self):
        coordinator = self._coordinator()
        batched = [
            spec.key
            for bid in sorted(coordinator._batches)
            for spec in coordinator._batches[bid]
        ]
        planned = [
            spec.key
            for specs in coordinator._specs_by_region.values()
            for spec in specs
        ]
        assert sorted(batched) == sorted(planned)
        assert coordinator.trials == len(REGIONS) * N
        assert all(
            len(specs) <= 4 for specs in coordinator._batches.values()
        )

    def test_manifest_carries_execution_identity(self):
        coordinator = self._coordinator()
        manifest = coordinator.manifest()
        assert manifest["app"] == "wavetoy"
        assert manifest["nprocs"] == SMALL_NPROCS
        assert manifest["app_params"] == SMALL_WAVETOY
        assert manifest["trials"] == len(REGIONS) * N
        assert json.dumps(manifest)  # wire format is plain JSON

    def test_lease_then_wait_then_done(self):
        now = [0.0]
        coordinator = self._coordinator(clock=lambda: now[0])
        grants = []
        while True:
            payload = coordinator.lease_payload("w")
            if "batch" not in payload:
                break
            grants.append(payload)
        assert payload == {"wait": pytest.approx(2.0)}  # all leased out
        for grant in grants:
            reply = coordinator.submit(
                "w",
                grant["batch"],
                [self._result_for(coordinator, s).to_json()
                 for s in grant["specs"]],
            )
            assert reply["accepted"] == len(grant["specs"])
        assert coordinator.done
        assert coordinator.lease_payload("w") == {"done": True}

    def test_submit_validation(self):
        coordinator = self._coordinator()
        grant = coordinator.lease_payload("w")
        specs = grant["specs"]
        foreign = [
            s
            for bid, chunk in coordinator._batches.items()
            if bid != grant["batch"]
            for s in chunk
        ][0]
        good = self._result_for(coordinator, specs[0]).to_json()
        reply = coordinator.submit(
            "w",
            grant["batch"],
            [
                good,
                good,  # duplicate of the same key in one submission
                self._result_for(coordinator, foreign).to_json(),  # not leased
                {"key": "garbage"},  # unparseable
            ],
        )
        assert reply["accepted"] == 1
        assert reply["duplicate"] == 1
        assert reply["rejected"] == 2
        # Partial batch: not acknowledged yet.
        assert not coordinator.book.state(grant["batch"]) == "done"
        assert "error" in coordinator.submit("w", 999, [])

    def test_requeued_batch_counts_once(self):
        now = [0.0]
        coordinator = self._coordinator(
            clock=lambda: now[0], lease_timeout=5.0
        )
        grant = coordinator.lease_payload("dead")
        payloads = [
            self._result_for(coordinator, s).to_json()
            for s in grant["specs"]
        ]
        now[0] = 10.0  # the lease expires; a second worker regrants
        regrant = coordinator.lease_payload("alive")
        assert regrant["batch"] == grant["batch"]
        assert regrant["attempt"] == 2
        first = coordinator.submit("alive", regrant["batch"], payloads)
        late = coordinator.submit("dead", grant["batch"], payloads)
        assert first["accepted"] == len(payloads)
        assert late["accepted"] == 0
        assert late["duplicate"] == len(payloads)
        assert coordinator.book.requeues == 1

    def test_finalize_requires_completion(self):
        coordinator = self._coordinator()
        with pytest.raises(RuntimeError, match="incomplete"):
            coordinator.finalize()

    def test_stratified_engines_rejected(self):
        engine = small_campaign().engine(
            telemetry=TelemetryHub(), stratify=True
        )
        with pytest.raises(ValueError, match="stratified"):
            CampaignCoordinator(engine, REGIONS, N)

    def test_coordinator_url_forms(self):
        assert coordinator_url("9200") == "http://127.0.0.1:9200"
        assert coordinator_url("0.0.0.0:81") == "http://0.0.0.0:81"
        assert coordinator_url("http://h:9/") == "http://h:9"


class TestDistributedEquivalence:
    """Coordinator + two HTTP workers == one local run, bit for bit.

    The two workers alternate over the wire (trial execution scopes a
    per-process observability runtime, so concurrent clients belong in
    separate processes - the chaos integration test runs them that
    way); the coordinator's fold sees exactly the interleaved
    multi-worker submission stream.
    """

    def _run_distributed(self, tmp_path, store_name):
        engine = small_campaign().engine(
            telemetry=TelemetryHub(), store=tmp_path / store_name
        )
        coordinator = CampaignCoordinator(
            engine, REGIONS, N, batch_size=4, lease_timeout=60.0
        )
        server = TelemetryServer(CoordinatorService(coordinator)).start()
        try:
            workers = [
                WorkerClient(
                    server.url, name=f"w{i}", poll_interval=0.05,
                    max_batches=2,
                )
                for i in range(2)
            ]
            for worker in workers:
                worker.run()
            assert coordinator.done
            result = coordinator.finalize()
        finally:
            server.stop()
            engine.close()
        return result, engine, workers

    def test_tallies_and_store_match_local_run(self, tmp_path, reference):
        local = small_campaign().run(
            REGIONS, N, jobs=2, store=tmp_path / "local.jsonl",
            checkpoint_stride=None,
        )
        distributed, engine, workers = self._run_distributed(
            tmp_path, "dist.jsonl"
        )
        for region in REGIONS:
            a, b = local.regions[region], distributed.regions[region]
            assert dict(a.tally.counts) == dict(b.tally.counts)
            assert a.delivered == b.delivered
            assert a.resumed == b.resumed == 0
            assert a.pruned == b.pruned == 0
            # And both equal the module baseline.
            ref = reference.regions[region]
            assert dict(ref.tally.counts) == dict(b.tally.counts)
        # Byte-identical stores (modulo append order).
        local_lines = sorted((tmp_path / "local.jsonl").read_text().split())
        dist_lines = sorted((tmp_path / "dist.jsonl").read_text().split())
        assert local_lines == dist_lines
        # Both workers did real work (4 batches, 2 each by alternation
        # is not guaranteed - but every batch went to somebody).
        assert sum(w.stats.batches for w in workers) == 4
        assert sum(w.stats.trials for w in workers) == len(REGIONS) * N
        # The coordinator's live telemetry folded every submission.
        payload = engine.telemetry.status_payload()
        assert sum(r["trials"] for r in payload["regions"]) == len(REGIONS) * N

    def test_resume_satisfies_everything_locally(self, tmp_path, reference):
        small_campaign().run(
            REGIONS, N, jobs=2, store=tmp_path / "full.jsonl",
            checkpoint_stride=None,
        )
        engine = small_campaign().engine(
            telemetry=TelemetryHub(), store=tmp_path / "full.jsonl"
        )
        coordinator = CampaignCoordinator(engine, REGIONS, N, resume=True)
        try:
            # Nothing to lease: the store already holds every trial.
            assert coordinator.done
            assert coordinator.lease_payload("w") == {"done": True}
            result = coordinator.finalize()
        finally:
            engine.close()
        for region in REGIONS:
            row = result.regions[region]
            assert row.resumed == N
            assert dict(row.tally.counts) == dict(
                reference.regions[region].tally.counts
            )
