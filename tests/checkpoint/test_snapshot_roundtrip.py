"""MachineSnapshot round-trip: pause a job mid-run, capture, pickle,
deliberately corrupt every snapshotted machine layer, restore, and
prove the resumed execution is bit-identical to an uninterrupted one
(console output, named outputs, round count, per-rank block clocks, and
the full final machine digest).

These tests drive the scheduler through the stepping API
(``Job.begin``/``Job.step_round``) that the checkpoint layer is built
on, so they also pin that API's contract: ``begin`` returns ``None``
on a clean start and ``step_round`` returns ``None`` until the job
produces a result.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine.checkpoint import MachineSnapshot
from repro.mpi.simulator import Job, JobConfig
from tests.conftest import (
    SMALL_NPROCS,
    small_climate,
    small_moldyn,
    small_wavetoy,
)

APPS = {
    "wavetoy": small_wavetoy,
    "moldyn": small_moldyn,
    "climate": small_climate,
}

#: Scheduler rounds to execute before pausing for the snapshot.  All
#: three SMALL apps are still mid-computation at this point.
PAUSE_ROUNDS = 3


def make_job(app_name: str) -> Job:
    return Job(APPS[app_name](), JobConfig(nprocs=SMALL_NPROCS))


def step_to_completion(job: Job):
    result = None
    while result is None:
        result = job.step_round()
    return result


def scribble(job: Job) -> None:
    """Corrupt state across every layer the snapshot claims to own:
    registers, memory segments, clock, stack pointers, heap accounting,
    channel counters, per-rank RNG streams and console output."""
    vm = job.vms[0]
    regs, fpu, blocks, insns = vm.capture_state()
    r, eip, zf, sf, reads, writes = regs
    mangled_regs = (
        tuple((x ^ 0xDEADBEEF) & 0xFFFFFFFF for x in r),
        (eip + 7) & 0xFFFFFFFF,
        not zf,
        sf,
        reads,
        writes,
    )
    vm.restore_state((mangled_regs, fpu, blocks + 9999, insns + 12345))

    image = job.images[0]
    image.data.buf[:64] ^= 0xFF
    image.data.version += 3
    image.stack_segment.buf[:32] ^= 0xA5
    image.stack.esp = (image.stack.esp - 64) & 0xFFFFFFFF
    image.stack.ebp = (image.stack.ebp + 8) & 0xFFFFFFFF
    image.heap.high_water += 1234

    job.endpoints[0].bytes_received += 4096
    job.adis[0]._seq += 17
    job.contexts[1].rng.integers(1 << 16)  # advance the stream
    job.stdout.append("garbage line from a corrupted run")
    job.outputs["scribbled"] = b"\x00\x01"
    job.rounds += 5


def result_fields(result):
    return (
        result.status,
        result.detail,
        result.stdout,
        result.stderr,
        result.outputs,
        result.rounds,
        result.blocks_per_rank,
    )


@pytest.mark.parametrize("app_name", sorted(APPS))
class TestRoundTrip:
    def test_corrupt_restore_resume_bit_identical(self, app_name):
        baseline_job = make_job(app_name)
        baseline = baseline_job.run()
        assert baseline.completed

        job = make_job(app_name)
        assert job.begin() is None
        for _ in range(PAUSE_ROUNDS):
            assert job.step_round() is None

        snapshot = MachineSnapshot.capture(job)
        digest = snapshot.digest()

        # The snapshot must survive a pickle round trip unchanged (this
        # is how recordings/state would ship to pool workers).
        clone = pickle.loads(pickle.dumps(snapshot, protocol=4))
        assert clone.digest() == digest

        scribble(job)
        assert MachineSnapshot.capture(job).digest() != digest

        clone.restore(job)
        assert MachineSnapshot.capture(job).digest() == digest

        resumed = step_to_completion(job)
        assert result_fields(resumed) == result_fields(baseline)
        assert (
            MachineSnapshot.capture(job).digest()
            == MachineSnapshot.capture(baseline_job).digest()
        )

    def test_stepping_api_matches_run(self, app_name):
        """begin + step_round loop is exactly ``Job.run``."""
        stepped_job = make_job(app_name)
        assert stepped_job.begin() is None
        stepped = step_to_completion(stepped_job)
        assert result_fields(stepped) == result_fields(make_job(app_name).run())


class TestSnapshotContract:
    def test_digest_distinguishes_rounds(self):
        job = make_job("wavetoy")
        assert job.begin() is None
        assert job.step_round() is None
        d1 = MachineSnapshot.capture(job).digest()
        assert job.step_round() is None
        d2 = MachineSnapshot.capture(job).digest()
        assert d1 != d2

    def test_restore_rejects_wrong_nprocs(self):
        job = make_job("wavetoy")
        assert job.begin() is None
        snapshot = MachineSnapshot.capture(job)
        other = Job(small_wavetoy(), JobConfig(nprocs=2))
        assert other.begin() is None
        with pytest.raises(ValueError, match="ranks"):
            snapshot.restore(other)
