"""Differential proof that checkpointing changes nothing observable.

``Campaign.run`` with golden-prefix replay at several strides must be
indistinguishable from the plain interpreter run: identical
manifestation tallies, identical stored JSONL content (hashed), and
identical error-latency histograms - at jobs=1 and through the
process-pool executor at jobs=2 (where the recording ships to workers
pickled inside the execution context).
"""

from __future__ import annotations

import functools
import hashlib

import pytest

from repro.apps import WavetoyApp
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.mpi.simulator import JobConfig
from repro.observability.metrics import MetricsRegistry
from repro.sampling.plans import CampaignPlan
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY

#: Stack and heap are the regions checkpointing accelerates most (late
#: delivery); message exercises the always-real channel path; register
#: faults produce crashes with measured latency at this seed, keeping
#: the histogram comparison non-vacuous.
REGIONS = (Region.REGULAR_REG, Region.STACK, Region.HEAP, Region.MESSAGE)
N = 4
STRIDES = (1, 7, 64)

small_factory = functools.partial(WavetoyApp, **SMALL_WAVETOY)


def make_campaign():
    return Campaign(
        small_factory,
        JobConfig(nprocs=SMALL_NPROCS),
        plan=CampaignPlan(per_region={r.value: N for r in Region}),
        seed=3,
        app_params=SMALL_WAVETOY,
    )


def observe(tmp_path, label, *, jobs, stride):
    """One campaign run distilled to its externally visible fingerprint:
    (per-region tallies, store content hash, latency histograms)."""
    store = tmp_path / f"{label}.jsonl"
    registry = MetricsRegistry()
    result = make_campaign().run(
        REGIONS,
        jobs=jobs,
        store=store,
        metrics=registry,
        checkpoint_stride=stride,
    )
    tallies = {
        region: (dict(row.tally.counts), row.delivered)
        for region, row in result.regions.items()
    }
    # Sort lines so jobs=2 completion order cannot affect the hash.
    lines = sorted(store.read_text().splitlines())
    content_hash = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    latency = {
        labels: registry.histogram_state(
            "repro_error_latency_blocks", **dict(labels)
        )
        for labels in registry.histograms_named("repro_error_latency_blocks")
    }
    return tallies, content_hash, latency


@pytest.mark.parametrize("jobs", [1, 2])
def test_every_stride_is_indistinguishable_from_no_checkpoint(tmp_path, jobs):
    baseline = observe(tmp_path, f"off-j{jobs}", jobs=jobs, stride=None)
    tallies, _, latency = baseline
    # Sanity: the fingerprint is non-trivial (errors occurred and at
    # least one region recorded latencies) so the equalities below
    # cannot pass vacuously.
    assert sum(sum(t.values()) for t, _ in tallies.values()) == N * len(REGIONS)
    assert latency
    for stride in STRIDES:
        checkpointed = observe(
            tmp_path, f"s{stride}-j{jobs}", jobs=jobs, stride=stride
        )
        assert checkpointed == baseline, f"stride={stride} diverged"
