"""Property-based tests on the memory substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import Clock
from repro.memory.heap import ChunkTag, HEADER_SIZE, HeapAllocator
from repro.memory.segments import Perm, Segment
from repro.memory.stack import StackManager


def fresh_heap(size=1 << 16):
    return HeapAllocator(Segment("heap", 0x10000, size, Perm.RW, Clock()))


class TestHeapProperties:
    @given(
        st.lists(st.integers(1, 400), min_size=1, max_size=40),
        st.data(),
    )
    @settings(max_examples=60)
    def test_alloc_free_invariants(self, sizes, data):
        """Live chunks never overlap, headers always verify, and freeing
        everything restores the arena."""
        heap = fresh_heap()
        live: list[tuple[int, int]] = []
        for size in sizes:
            addr = heap.malloc(size)
            # no overlap with anything currently live (incl. headers)
            for other, osize in live:
                assert addr + size <= other - HEADER_SIZE or other + osize <= addr - HEADER_SIZE
            live.append((addr, size))
            # randomly free ~one third of the time
            if live and data.draw(st.integers(0, 2)) == 0:
                victim = data.draw(st.integers(0, len(live) - 1))
                addr, _ = live.pop(victim)
                heap.free(addr)
            list(heap.iter_chunks())  # headers must verify
        for addr, _ in live:
            heap.free(addr)
        assert heap.in_use == 0
        assert heap.user_bytes() == 0

    @given(st.lists(st.integers(1, 100), min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_accounting_matches_tags(self, sizes):
        heap = fresh_heap()
        user_total = mpi_total = 0
        for i, size in enumerate(sizes):
            if i % 2:
                with heap.inside_mpi():
                    heap.malloc(size)
                mpi_total += size
            else:
                heap.malloc(size)
                user_total += size
        assert heap.user_bytes() == user_total
        assert heap.mpi_bytes() == mpi_total

    @given(st.integers(0, (1 << 16) - 1))
    @settings(max_examples=40)
    def test_scan_always_returns_user_chunk_when_one_exists(self, offset):
        heap = fresh_heap()
        with heap.inside_mpi():
            heap.malloc(64)
        user = heap.malloc(64)
        with heap.inside_mpi():
            heap.malloc(64)
        found = heap.find_user_chunk_from(heap.segment.base + offset)
        assert found is not None and found.tag is ChunkTag.USER
        assert found.addr == user


class TestStackProperties:
    @given(st.lists(st.integers(0, 0xFFFF_FFFF), min_size=1, max_size=100))
    def test_push_pop_is_lifo(self, values):
        stack = StackManager(Segment("stack", 0xB0000000, 1 << 14, Perm.RW, Clock()))
        for v in values:
            stack.push_u32(v)
        for v in reversed(values):
            assert stack.pop_u32() == v

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 64)),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40)
    def test_frame_walk_matches_push_order(self, shapes):
        stack = StackManager(Segment("stack", 0xB0000000, 1 << 14, Perm.RW, Clock()))
        frames = []
        for nargs, locals_size in shapes:
            ret = 0x0804_8000 + 8 * len(frames)
            frames.append(
                (stack.push_frame(ret, args=(1,) * nargs, locals_size=locals_size), ret)
            )
        walked = list(stack.walk_frames())
        assert [r for _, r in walked] == [ret for _, ret in reversed(frames)]


class TestSegmentProperties:
    @given(st.integers(0, 4095), st.integers(0, 7))
    def test_double_flip_restores(self, offset, bit):
        seg = Segment("s", 0x1000, 4096, Perm.RW, Clock())
        before = seg.read_u8(0x1000 + offset)
        seg.flip_bit(0x1000 + offset, bit)
        seg.flip_bit(0x1000 + offset, bit)
        assert seg.read_u8(0x1000 + offset) == before

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_f64_roundtrip(self, value):
        seg = Segment("s", 0, 64, Perm.RW, Clock())
        seg.write_f64(8, value)
        assert seg.read_f64(8) == value

    @given(st.integers(0, 0xFFFF_FFFF))
    def test_u32_roundtrip(self, value):
        seg = Segment("s", 0, 64, Perm.RW, Clock())
        seg.write_u32(4, value)
        assert seg.read_u32(4) == value
