"""Soundness of the interval domain against the concrete VM.

The crash stratum rests on one claim: for every instruction index ``i``
and register ``r``, the abstract ``base_interval(i, r)`` contains the
concrete value of ``r`` whenever the VM is about to execute instruction
``i``.  If that ever fails, an escape "proof" could cover a value that
stays mapped and the crash-prone stratum would over-claim.

The property drives randomized ALU kernels (moves, immediate and
register arithmetic, an optional forward branch) through the real VM
one step at a time and checks containment at every visited program
point for the whole register file.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cpu.assembler import assemble_function
from repro.cpu.isa import INSN_SIZE
from repro.cpu.registers import EBP, ESP
from repro.cpu.vm import RET_SENTINEL
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.outcomes.intervals import IntervalAnalysis
from tests.conftest import build_image

REGS = ("eax", "ebx", "ecx", "edx")

regs = st.sampled_from(REGS)
#: small steps exercise precise tracking, huge ones force wrap -> TOP
imms = st.one_of(
    st.integers(min_value=-16, max_value=16),
    st.integers(min_value=0, max_value=2**31 - 1),
)

alu_insns = st.one_of(
    st.tuples(st.just("movi"), regs, st.integers(0, 2**31 - 1)),
    st.tuples(st.just("addi"), regs, imms),
    st.tuples(st.just("mov"), regs, regs),
    st.tuples(st.just("add"), regs, regs),
    st.tuples(st.just("sub"), regs, regs),
)


def render(insn) -> str:
    op, a, b = insn
    return f"{op} {a}, {b}"


@st.composite
def kernels(draw) -> str:
    lines = [render(i) for i in draw(st.lists(alu_insns, max_size=6))]
    if draw(st.booleans()):
        # one forward branch: the analysis must join both paths
        lines.append(f"cmpi {draw(regs)}, {draw(st.integers(0, 4))}")
        lines.append("jz skip")
        lines += [
            render(i) for i in draw(st.lists(alu_insns, min_size=1, max_size=4))
        ]
        tail = [render(i) for i in draw(st.lists(alu_insns, max_size=3))]
        lines.append("skip: " + (tail[0] if tail else "ret"))
        lines += tail[1:] + (["ret"] if tail else [])
    else:
        lines.append("ret")
    return "\n".join(lines)


@given(source=kernels())
@settings(max_examples=60, deadline=None)
def test_intervals_contain_concrete_execution(source):
    analysis = IntervalAnalysis(
        ControlFlowGraph.from_function(assemble_function("f", source))
    )
    image, vm = build_image({"f": source})
    entry = image.entry_points["f"]
    n_insns = len(source.splitlines())

    image.stack.push_u32(RET_SENTINEL)
    vm.regs.poke(ESP, image.stack.esp)
    vm.regs.poke(EBP, image.stack.esp)
    vm.regs.eip = entry

    steps = 0
    while vm.regs.eip != RET_SENTINEL:
        assert steps < 4 * n_insns, "straight-line kernel looped"
        idx = (vm.regs.eip - entry) // INSN_SIZE
        assert 0 <= idx < n_insns
        for reg in range(8):
            interval = analysis.base_interval(idx, reg)
            value = vm.regs.peek(reg)
            assert interval.contains(value), (
                f"insn {idx} ({source.splitlines()[idx]!r}): reg {reg} "
                f"value {value:#x} outside [{interval.lo:#x}, "
                f"{interval.hi:#x}]"
            )
        vm.step()
        steps += 1
