"""Property-based tests (hypothesis) on core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import INSN_SIZE, Insn, Op, UndefinedOpcode, decode, encode
from repro.cluster.ecc import (
    CODEWORD_BITS,
    DecodeOutcome,
    decode as ecc_decode,
    encode as ecc_encode,
    flip_bits,
)
from repro.cluster.netchecksum import internet_checksum
from repro.detectors.checksums import fletcher32, seal, verify
from repro.sampling.theory import achieved_error, sample_size_oversampled
from repro.trace.working_set import working_set_sizes

# ----------------------------------------------------------------------
# ISA
# ----------------------------------------------------------------------
ops = st.sampled_from(list(Op))
regs = st.integers(0, 15)
imms = st.integers(-(2**31), 2**31 - 1)


class TestIsaProperties:
    @given(ops, regs, regs, regs, regs, st.integers(0, 255), imms)
    def test_encode_decode_roundtrip(self, op, r1, r2, r3, r4, subop, imm):
        insn = Insn(op, r1, r2, r3, r4, subop, imm)
        assert decode(encode(insn)) == insn

    @given(st.binary(min_size=INSN_SIZE, max_size=INSN_SIZE))
    def test_decode_total_or_undefined(self, word):
        """Decoding never fails in any way other than UndefinedOpcode."""
        try:
            insn = decode(word)
        except UndefinedOpcode:
            return
        assert 0 <= insn.r1 < 16 and 0 <= insn.r4 < 16
        assert encode(insn) == word  # re-encoding is exact

    @given(ops, st.integers(0, 63))
    def test_single_bit_flip_changes_decode_or_faults(self, op, bit):
        word = bytearray(encode(Insn(op, r1=1, r2=2, imm=77)))
        word[bit // 8] ^= 1 << (bit % 8)
        try:
            flipped = decode(bytes(word))
        except UndefinedOpcode:
            return
        assert flipped != Insn(op, r1=1, r2=2, imm=77)


# ----------------------------------------------------------------------
# SECDED
# ----------------------------------------------------------------------
words = st.integers(0, (1 << 64) - 1)


class TestEccProperties:
    @given(words)
    def test_clean_roundtrip(self, word):
        data, outcome = ecc_decode(ecc_encode(word))
        assert data == word and outcome is DecodeOutcome.OK

    @given(words, st.integers(0, CODEWORD_BITS - 1))
    @settings(max_examples=40)
    def test_any_single_flip_corrected(self, word, pos):
        data, outcome = ecc_decode(flip_bits(ecc_encode(word), [pos]))
        assert data == word
        assert outcome is DecodeOutcome.CORRECTED

    @given(
        words,
        st.lists(
            st.integers(0, CODEWORD_BITS - 1), min_size=2, max_size=2, unique=True
        ),
    )
    @settings(max_examples=40)
    def test_any_double_flip_detected(self, word, positions):
        _, outcome = ecc_decode(flip_bits(ecc_encode(word), positions))
        assert outcome is DecodeOutcome.DETECTED


# ----------------------------------------------------------------------
# checksums
# ----------------------------------------------------------------------
class TestChecksumProperties:
    @given(st.binary(max_size=512))
    def test_seal_verify_roundtrip(self, payload):
        assert verify(seal(payload)) == payload

    @given(st.binary(min_size=1, max_size=256), st.integers(0, 10_000))
    def test_single_bit_flip_always_caught(self, payload, seed):
        sealed = bytearray(seal(payload))
        rng = np.random.default_rng(seed)
        pos = int(rng.integers(len(sealed) * 8))
        sealed[pos // 8] ^= 1 << (pos % 8)
        import pytest

        from repro.detectors.checksums import ChecksumMismatch

        with pytest.raises(ChecksumMismatch):
            verify(bytes(sealed))

    @given(st.binary(max_size=300))
    def test_fletcher_fits_32_bits(self, data):
        assert 0 <= fletcher32(data) < (1 << 32)

    @given(st.binary(max_size=128))
    def test_internet_checksum_verifies_to_zero(self, data):
        """Appending the checksum makes the ones'-complement sum verify
        (the standard TCP receiver check)."""
        if len(data) % 2:
            data += b"\x00"
        c = internet_checksum(data)
        total = c
        buf = np.frombuffer(data, dtype=np.uint8)
        words = buf.reshape(-1, 2)
        for hi, lo in words:
            total += (int(hi) << 8) | int(lo)
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        assert total == 0xFFFF


# ----------------------------------------------------------------------
# sampling theory
# ----------------------------------------------------------------------
class TestSamplingProperties:
    @given(st.floats(0.005, 0.2))
    def test_size_error_inverse(self, d):
        n = sample_size_oversampled(d)
        assert achieved_error(n) <= d
        if n > 1:
            assert achieved_error(n - 1) > d

    @given(st.integers(1, 10_000))
    def test_error_decreases_with_n(self, n):
        assert achieved_error(n + 1) < achieved_error(n)


# ----------------------------------------------------------------------
# working sets
# ----------------------------------------------------------------------
class TestWorkingSetProperties:
    @given(
        st.lists(st.integers(-1, 1000), min_size=1, max_size=200),
        st.lists(st.integers(0, 1001), min_size=1, max_size=50),
    )
    def test_nonincreasing_and_bounded(self, last, times):
        last_arr = np.array(last, dtype=np.int64)
        times_arr = np.array(sorted(times), dtype=np.int64)
        sizes = working_set_sizes(last_arr, times_arr)
        assert np.all(np.diff(sizes) <= 0)
        assert sizes[0] <= np.count_nonzero(last_arr >= 0)
        assert np.all(sizes >= 0)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
    def test_wss_at_zero_counts_all_accessed(self, last):
        last_arr = np.array(last, dtype=np.int64)
        assert working_set_sizes(last_arr, np.array([0]))[0] == len(last)
