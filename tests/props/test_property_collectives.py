"""Property-based tests: collectives must agree with NumPy references
for arbitrary (small) job sizes, counts and data."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.datatypes import MPI_DOUBLE, MPI_MAX, MPI_MIN, MPI_PROD, MPI_SUM
from repro.mpi.simulator import JobStatus
from tests.mpi._util import run_app

sizes = st.integers(1, 6)
counts = st.integers(1, 8)
ops = st.sampled_from([MPI_SUM, MPI_PROD, MPI_MIN, MPI_MAX])
seeds = st.integers(0, 2**16)


@settings(max_examples=25, deadline=None)
@given(sizes, counts, ops, seeds)
def test_allreduce_matches_numpy(nprocs, count, op, seed):
    rng = np.random.default_rng(seed)
    data = rng.uniform(0.5, 2.0, size=(nprocs, count))  # positive: PROD-safe
    expected = {
        "SUM": data.sum(axis=0),
        "PROD": data.prod(axis=0),
        "MIN": data.min(axis=0),
        "MAX": data.max(axis=0),
    }[op.name]

    def main(ctx):
        send = ctx.image.heap.malloc(count * 8)
        recv = ctx.image.heap.malloc(count * 8)
        ctx.image.heap_segment.view_f64(send, count)[:] = data[ctx.rank]
        yield from ctx.comm.allreduce(send, recv, count, MPI_DOUBLE, op)
        got = np.array(ctx.image.heap_segment.view_f64(recv, count))
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    result, _ = run_app(main, nprocs=nprocs)
    assert result.status is JobStatus.COMPLETED, result.detail


@settings(max_examples=20, deadline=None)
@given(sizes, counts, st.integers(0, 5), seeds)
def test_bcast_matches_root_data(nprocs, count, root_raw, seed):
    root = root_raw % nprocs
    rng = np.random.default_rng(seed)
    payload = rng.standard_normal(count)

    def main(ctx):
        buf = ctx.image.heap.malloc(count * 8)
        if ctx.rank == root:
            ctx.image.heap_segment.view_f64(buf, count)[:] = payload
        yield from ctx.comm.bcast(buf, count, MPI_DOUBLE, root)
        got = np.array(ctx.image.heap_segment.view_f64(buf, count))
        np.testing.assert_array_equal(got, payload)

    result, _ = run_app(main, nprocs=nprocs)
    assert result.status is JobStatus.COMPLETED, result.detail


@settings(max_examples=20, deadline=None)
@given(sizes, counts, seeds)
def test_allgather_assembles_all_blocks(nprocs, count, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((nprocs, count))

    def main(ctx):
        send = ctx.image.heap.malloc(count * 8)
        recv = ctx.image.heap.malloc(nprocs * count * 8)
        ctx.image.heap_segment.view_f64(send, count)[:] = data[ctx.rank]
        yield from ctx.comm.allgather(send, count, MPI_DOUBLE, recv)
        got = np.array(
            ctx.image.heap_segment.view_f64(recv, nprocs * count)
        ).reshape(nprocs, count)
        np.testing.assert_array_equal(got, data)

    result, _ = run_app(main, nprocs=nprocs)
    assert result.status is JobStatus.COMPLETED, result.detail


@settings(max_examples=15, deadline=None)
@given(sizes, counts, seeds)
def test_alltoall_transpose_property(nprocs, count, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((nprocs, nprocs, count))  # [rank][dest][elem]

    def main(ctx):
        n = ctx.nprocs
        send = ctx.image.heap.malloc(n * count * 8)
        recv = ctx.image.heap.malloc(n * count * 8)
        ctx.image.heap_segment.view_f64(send, n * count)[:] = data[
            ctx.rank
        ].reshape(-1)
        yield from ctx.comm.alltoall(send, count, MPI_DOUBLE, recv)
        got = np.array(
            ctx.image.heap_segment.view_f64(recv, n * count)
        ).reshape(n, count)
        np.testing.assert_array_equal(got, data[:, ctx.rank, :])

    result, _ = run_app(main, nprocs=nprocs)
    assert result.status is JobStatus.COMPLETED, result.detail


@settings(max_examples=15, deadline=None)
@given(sizes)
def test_mpi_heap_scratch_balanced(nprocs):
    """Collectives must free every MPI-tagged scratch chunk they
    allocate (no library heap leaks)."""

    def main(ctx):
        count = 4
        send = ctx.image.heap.malloc(count * 8)
        recv = ctx.image.heap.malloc(count * 8)
        ctx.image.heap_segment.view_f64(send, count)[:] = 1.0
        yield from ctx.comm.allreduce(send, recv, count, MPI_DOUBLE, MPI_SUM)
        yield from ctx.comm.barrier()
        assert ctx.image.heap.mpi_bytes() == 0

    result, _ = run_app(main, nprocs=nprocs)
    assert result.status is JobStatus.COMPLETED, result.detail
