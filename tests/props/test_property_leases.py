"""Property test: the lease state machine loses nothing, counts once.

The distributed campaign's correctness argument has two halves: the
:class:`~repro.engine.coordination.LeaseBook` guarantees every batch is
eventually executable (expired leases requeue, done batches never
regrant, a batch is never live-leased twice), and the coordinator's
key-deduplicated fold guarantees a batch executed twice (a requeue
whose presumed-dead worker later delivers) counts once.  This property
drives random interleavings of lease / complete / abandon / clock-
advance operations - the abandon op is a silently dying worker - and
checks both halves against a model, then proves the drain: however the
interleaving went, a recovery pass always completes the campaign with
every spec counted exactly once.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.coordination import LeaseBook

TIMEOUT = 10.0

ops = st.lists(
    st.one_of(
        st.tuples(st.just("lease"), st.integers(0, 3)),
        st.tuples(st.just("complete"), st.integers(0, 7)),
        st.tuples(st.just("abandon"), st.integers(0, 7)),
        st.tuples(st.just("advance"), st.integers(1, 15)),
    ),
    max_size=50,
)


@settings(deadline=None, max_examples=200)
@given(n_batches=st.integers(1, 5), sequence=ops)
def test_no_spec_lost_or_double_counted(n_batches, sequence):
    specs = {
        bid: [f"batch{bid}-spec{j}" for j in range(3)]
        for bid in range(n_batches)
    }
    every_key = {key for keys in specs.values() for key in keys}
    book = LeaseBook(range(n_batches), lease_timeout=TIMEOUT)
    now = 0.0
    seen: set[str] = set()  # the coordinator's key-dedup
    tallied: dict[str, int] = {}  # times a key was *accepted* into the fold
    live: list[tuple[int, float]] = []  # outstanding grants (incl. stale)
    acked: set[int] = set()

    def fold_submission(bid: int) -> None:
        """A worker submits its batch: first delivery of a key is
        tallied, duplicates are dropped, then the batch is acked -
        exactly ``CampaignCoordinator.submit``'s fold."""
        for key in specs[bid]:
            if key in seen:
                continue
            seen.add(key)
            tallied[key] = tallied.get(key, 0) + 1
        first = book.ack(bid, now)
        assert first == (bid not in acked)  # ack fires exactly once
        acked.add(bid)

    for op, arg in sequence:
        if op == "advance":
            now += float(arg)
        elif op == "lease":
            bid = book.lease(f"w{arg}", now)
            if bid is not None:
                assert bid not in acked  # done batches never regrant
                for other, granted_at in live:
                    if other == bid:  # regrant only after expiry
                        assert now >= granted_at + TIMEOUT
                live.append((bid, now))
        elif live:  # complete / abandon an outstanding grant
            bid, granted_at = live.pop(arg % len(live))
            if op == "complete":
                # Late delivery from an expired lease is accepted: the
                # work is real and the fold dedups it.
                fold_submission(bid)

    # The drain property: whatever happened above, a recovery worker
    # that outlives every lease deadline finishes the campaign.
    rounds = 0
    while not book.all_done:
        now += TIMEOUT
        bid = book.lease("recovery", now)
        assert bid is not None, "not done, yet nothing grantable: lost batch"
        fold_submission(bid)
        rounds += 1
        assert rounds <= 2 * n_batches, "drain did not converge"

    assert set(tallied) == every_key  # nothing lost
    assert all(count == 1 for count in tallied.values())  # nothing doubled
    assert book.done == n_batches
    assert book.pending == book.leased == 0
