"""Translated closures are observationally equal to the interpreter.

Two properties pin the dual-mode engine (PR 8):

* **Shipped-kernel units.**  For every translation unit of every suite
  application's linked kernels, executing the unit's closure from a
  random register file (and randomly perturbed data segment) leaves
  registers, access counters, flags, memory, the block clock and the
  retirement counter bit-identical to stepping the interpreter over the
  same instructions - including the exception type when the random
  state makes the unit fault mid-way.

* **Random kernels end-to-end.**  Small randomized ALU/branch/memory
  programs produce identical final VM state whether ``vm.fastpath`` is
  set or not.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.apps import APPLICATION_SUITE
from repro.cpu.translate import build_vm_table
from repro.mpi.simulator import JobConfig
from tests.conftest import build_image

_BIG_BUDGET = 1 << 62


def _build(app_name):
    app = APPLICATION_SUITE[app_name]()
    config = JobConfig(nprocs=2)
    image, vm = app.build_process(0, config.nprocs, config)
    vm.cf_checker = None  # compare pure execution semantics
    return image, vm


class _Harness:
    """An interpreter VM and a translated VM over identical images."""

    def __init__(self, app_name):
        self.image_i, self.vm_i = _build(app_name)
        self.image_f, self.vm_f = _build(app_name)
        self.table = build_vm_table(self.image_f)
        self.baseline = [
            (seg.name, seg.buf.tobytes())
            for seg in self.vm_i.space.segments()
        ]
        self.fpu_state = self.vm_i.fpu.capture_state()

    def reset(self, regs, pokes):
        for vm in (self.vm_i, self.vm_f):
            for (name, raw), seg in zip(
                self.baseline, vm.space.segments()
            ):
                assert seg.name == name
                seg.buf[:] = np.frombuffer(raw, dtype=np.uint8)
            data = vm.space.segment("data")
            for off, byte in pokes:
                data.buf[off % data.size] = byte
            vm.regs.r[:] = regs
            vm.regs.read_count[:] = [0] * 8
            vm.regs.write_count[:] = [0] * 8
            vm.regs.zf = False
            vm.regs.sf = False
            vm.fpu.restore_state(self.fpu_state)
            vm.clock.restore(0)
            vm.instructions_retired = 0

    def observe(self, vm, exc):
        return (
            type(exc),
            exc.args if exc else None,
            vm.regs.capture_state(),
            vm.fpu.capture_state(),
            vm.clock.blocks,
            vm.instructions_retired,
            tuple(
                (s.name, s.buf.tobytes()) for s in vm.space.segments()
            ),
        )

    def run_unit(self, addr, n_insns):
        vm = self.vm_i
        vm.regs.eip = addr
        exc_i = None
        try:
            for _ in range(n_insns):
                vm.step()
        except Exception as e:  # noqa: BLE001 - compared below
            exc_i = e

        vm = self.vm_f
        vm.regs.eip = addr
        fn, n = self.table[addr]
        assert n == n_insns
        exc_f = None
        try:
            refused = fn(
                vm,
                vm.regs,
                vm.regs.r,
                vm.regs.read_count,
                vm.regs.write_count,
                vm.space,
                vm.fpu,
                vm.clock,
                _BIG_BUDGET,
            )
            assert not refused
        except Exception as e:  # noqa: BLE001 - compared below
            exc_f = e
        return self.observe(self.vm_i, exc_i), self.observe(
            self.vm_f, exc_f
        )


_HARNESSES: dict[str, _Harness] = {}
_UNITS: list[tuple[str, int, int]] = []
for _app in sorted(APPLICATION_SUITE):
    _h = _HARNESSES[_app] = _Harness(_app)
    for _addr, (_fn, _n) in sorted(_h.table.items()):
        _UNITS.append((_app, _addr, _n))


u32 = st.integers(0, 2**32 - 1)
pokes = st.lists(
    st.tuples(st.integers(0, 2**20), st.integers(0, 255)), max_size=8
)


@given(
    unit=st.sampled_from(_UNITS),
    regs=st.lists(u32, min_size=8, max_size=8),
    perturb=pokes,
)
@settings(max_examples=120, deadline=None)
def test_shipped_units_bit_identical(unit, regs, perturb):
    app, addr, n = unit
    harness = _HARNESSES[app]
    harness.reset(regs, perturb)
    interp, fast = harness.run_unit(addr, n)
    assert interp == fast


# ----------------------------------------------------------------------
# end-to-end over random kernels
# ----------------------------------------------------------------------
REGS = ("eax", "ebx", "ecx", "edx")
regs_s = st.sampled_from(REGS)
imms = st.one_of(
    st.integers(min_value=-64, max_value=64),
    st.integers(min_value=0, max_value=2**31 - 1),
)

alu = st.one_of(
    st.tuples(st.just("movi"), regs_s, st.integers(0, 2**31 - 1)),
    st.tuples(st.just("addi"), regs_s, imms),
    st.tuples(st.just("mov"), regs_s, regs_s),
    st.tuples(st.just("add"), regs_s, regs_s),
    st.tuples(st.just("sub"), regs_s, regs_s),
    st.tuples(st.just("imul"), regs_s, regs_s),
    st.tuples(st.just("xor"), regs_s, regs_s),
    st.tuples(st.just("idiv"), regs_s, regs_s),
    st.tuples(st.just("cmp"), regs_s, regs_s),
    st.tuples(st.just("neg"), regs_s, regs_s),
)


def render(insn) -> str:
    op, a, b = insn
    if op == "neg":
        return f"neg {a}"
    return f"{op} {a}, {b}"


@st.composite
def kernels(draw) -> str:
    lines = [render(i) for i in draw(st.lists(alu, max_size=10))]
    if draw(st.booleans()):
        lines.append("movi esi, $buf")
        lines.append(f"store [esi+{draw(st.integers(0, 15)) * 4}], "
                     f"{draw(regs_s)}")
        lines.append(f"load {draw(regs_s)}, [esi+{draw(st.integers(0, 15)) * 4}]")
    if draw(st.booleans()):
        lines.append(f"cmpi {draw(regs_s)}, {draw(st.integers(0, 4))}")
        lines.append("jz skip")
        lines += [render(i) for i in draw(st.lists(alu, min_size=1, max_size=4))]
        lines.append("skip: ret")
    else:
        lines.append("ret")
    return "\n".join(lines)


@given(source=kernels())
@settings(max_examples=60, deadline=None)
def test_random_kernels_end_to_end(source):
    out = []
    for fastpath in (False, True):
        image, vm = build_image({"f": source}, bss={"buf": 64})
        vm.fastpath = fastpath
        exc = None
        try:
            vm.call("f")
        except Exception as e:  # noqa: BLE001 - compared below
            exc = e
        out.append(
            (
                type(exc),
                exc.args if exc else None,
                vm.regs.capture_state(),
                vm.clock.blocks,
                vm.instructions_retired,
                tuple(
                    (s.name, s.buf.tobytes())
                    for s in vm.space.segments()
                ),
            )
        )
    assert out[0] == out[1]
