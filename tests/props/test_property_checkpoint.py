"""Property tests for the checkpoint layer.

The headline property: for every application and every fault region,
``execute_trial`` with golden-prefix replay enabled is bit-identical to
the plain interpreter run - same serialized ``TrialResult``, same
injection record, same per-trial metrics (modulo the checkpoint's own
counters, which exist only on the replay side).

Plus unit properties of the switch-point arithmetic (natural switch
round, stride quantization) on synthetic recordings, and the desync
guard: a tampered recording must raise ``CheckpointDesync`` rather than
silently classify as a fault outcome.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ClimateApp, MoldynApp, WavetoyApp
from repro.engine.checkpoint import (
    GoldenRecording,
    default_store,
    install_replay,
    natural_switch_round,
    plan_replay,
    quantize_switch_round,
)
from repro.engine.core import execute_trial
from repro.errors import CheckpointDesync
from repro.injection.campaign import Campaign
from repro.injection.faults import FaultSpec, Region
from repro.mpi.simulator import Job, JobConfig
from repro.sampling.plans import CampaignPlan
from tests.conftest import (
    SMALL_CLIMATE,
    SMALL_MOLDYN,
    SMALL_NPROCS,
    SMALL_WAVETOY,
)

STRIDE = 4

APPS = {
    "wavetoy": (WavetoyApp, SMALL_WAVETOY),
    "moldyn": (MoldynApp, SMALL_MOLDYN),
    "climate": (ClimateApp, SMALL_CLIMATE),
}


def make_campaign(app_name):
    factory, params = APPS[app_name]
    return Campaign(
        functools.partial(factory, **params),
        JobConfig(nprocs=SMALL_NPROCS),
        plan=CampaignPlan(per_region={r.value: 1 for r in Region}),
        seed=11,
        app_params=params,
    )


#: (plain context, replaying context, spec per region), built once per
#: app: the reference profile and golden recording dominate setup cost.
_CACHE: dict[str, tuple] = {}


def app_fixtures(app_name):
    if app_name not in _CACHE:
        campaign = make_campaign(app_name)
        with campaign.engine() as eng:
            specs = {region: eng.make_spec(region, 0) for region in Region}
        plain = campaign.execution_context()
        plain.collect_metrics = True
        replay = campaign.execution_context()
        replay.collect_metrics = True
        replay.checkpoint_stride = STRIDE
        _CACHE[app_name] = (plain, replay, specs)
    return _CACHE[app_name]


def normalized_metrics(snapshot):
    """Per-trial metrics minus the counters that legitimately differ:
    the checkpoint's own restore/skip accounting."""

    def keep(key):
        return not key[0].startswith("repro_checkpoint_")

    return (
        {k: v for k, v in snapshot.counters.items() if keep(k)},
        {k: v for k, v in snapshot.gauges.items() if keep(k)},
        {k: v for k, v in snapshot.histograms.items() if keep(k)},
    )


@pytest.mark.parametrize("region", list(Region), ids=lambda r: r.value)
@pytest.mark.parametrize("app_name", sorted(APPS))
def test_replayed_trial_bit_identical(app_name, region):
    plain, replay, specs = app_fixtures(app_name)
    spec = specs[region]
    want = execute_trial(plain, spec)
    got = execute_trial(replay, spec)
    assert got.to_json() == want.to_json()
    assert got.manifestation is want.manifestation
    assert got.delivered == want.delivered
    assert got.latency_blocks == want.latency_blocks
    assert normalized_metrics(got.metrics) == normalized_metrics(want.metrics)


# ----------------------------------------------------------------------
# switch-point arithmetic on synthetic recordings
# ----------------------------------------------------------------------
def synthetic_recording(round_end_blocks):
    n = len(round_end_blocks)
    return GoldenRecording(
        app="synthetic",
        nprocs=1,
        rounds=n,
        calls=((),),
        round_end_blocks=tuple(round_end_blocks),
        round_recv_bytes=tuple((0,) for _ in range(n)),
        blocks_per_rank=(round_end_blocks[-1] if round_end_blocks else 0,),
    )


#: Strictly increasing golden block clocks (one entry per round).
blocks_lists = st.lists(st.integers(1, 500), min_size=1, max_size=20).map(
    lambda deltas: tuple(itertools.accumulate(deltas))
)


class TestSwitchPointProperties:
    @given(blocks_lists, st.integers(0, 25), st.integers(1, 64))
    @settings(max_examples=200)
    def test_quantized_switch_is_bounded_and_restorable(
        self, blocks, natural, stride
    ):
        rec = synthetic_recording(blocks)
        q = quantize_switch_round(rec, natural, stride)
        assert 0 <= q <= min(natural, rec.rounds)
        if q >= 2:
            assert blocks[q - 1] // stride > blocks[q - 2] // stride
        elif q == 1:
            assert blocks[0] // stride > 0

    @given(blocks_lists, st.integers(0, 25))
    @settings(max_examples=100)
    def test_stride_one_never_quantizes(self, blocks, natural):
        """Every round boundary is a checkpoint at stride 1 (the clock
        advances at least one block per round)."""
        rec = synthetic_recording(blocks)
        assert quantize_switch_round(rec, natural, 1) == min(natural, rec.rounds)

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError, match="stride"):
            quantize_switch_round(synthetic_recording((10,)), 1, 0)


class TestNaturalSwitchOnRealRecording:
    def recording(self):
        _, replay, _ = app_fixtures("wavetoy")
        return default_store().get(replay)

    def test_fault_at_time_zero_replays_nothing(self):
        rec = self.recording()
        fault = FaultSpec(Region.STACK, rank=0, time_blocks=0)
        assert natural_switch_round(rec, fault) == 0
        assert plan_replay(rec, fault, STRIDE) is None

    def test_fault_beyond_activity_replays_everything(self):
        rec = self.recording()
        fault = FaultSpec(Region.STACK, rank=0, time_blocks=10**9)
        assert natural_switch_round(rec, fault) == rec.rounds
        plan = plan_replay(rec, fault, 1)
        assert plan.calls_skipped == rec.total_calls

    def test_message_fault_beyond_traffic_replays_everything(self):
        rec = self.recording()
        fault = FaultSpec(Region.MESSAGE, rank=1, target_byte=10**9)
        assert natural_switch_round(rec, fault) == rec.rounds

    def test_natural_switch_monotone_in_time(self):
        rec = self.recording()
        rounds = [
            natural_switch_round(
                rec, FaultSpec(Region.STACK, rank=0, time_blocks=t)
            )
            for t in range(0, rec.round_end_blocks[-1] + 100, 97)
        ]
        assert rounds == sorted(rounds)


class TestDesyncGuard:
    def test_tampered_recording_raises_not_classifies(self):
        _, replay, _ = app_fixtures("wavetoy")
        rec = default_store().get(replay)
        calls = [list(per_rank) for per_rank in rec.calls]
        calls[0][0] = dataclasses.replace(calls[0][0], name="bogus_kernel")
        tampered = dataclasses.replace(
            rec, calls=tuple(tuple(per_rank) for per_rank in calls)
        )
        fault = FaultSpec(Region.STACK, rank=0, time_blocks=10**9)
        plan = plan_replay(tampered, fault, 1)
        job = Job(replay.factory(), replay.job_config())
        install_replay(job, plan)
        # A desync is infrastructure breakage: it must escape the
        # job's outcome classification, not masquerade as a Crash.
        with pytest.raises(CheckpointDesync, match="bogus_kernel"):
            job.run()
