"""Property-based tests on the assembler: rendered programs must
round-trip through assembly, encoding and decoding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.assembler import assemble_function
from repro.cpu.isa import INSN_SIZE, Op, decode
from repro.cpu.registers import REG_NAMES

regs = st.sampled_from(REG_NAMES)
imms = st.integers(-(2**15), 2**15 - 1)
offsets = st.integers(0, 255)


@st.composite
def rr_line(draw):
    op = draw(st.sampled_from(["mov", "add", "sub", "imul", "and", "or", "xor", "cmp"]))
    return f"{op} {draw(regs)}, {draw(regs)}"


@st.composite
def ri_line(draw):
    op = draw(st.sampled_from(["addi", "cmpi"]))
    return f"{op} {draw(regs)}, {draw(imms)}"


@st.composite
def mem_line(draw):
    kind = draw(st.sampled_from(["load", "store", "fld", "fstp"]))
    reg, off = draw(regs), draw(offsets)
    operand = f"[{reg}+{off}]" if off else f"[{reg}]"
    if kind == "load":
        return f"load {draw(regs)}, {operand}"
    if kind == "store":
        return f"store {operand}, {draw(regs)}"
    return f"{kind} {operand}"


@st.composite
def movi_line(draw):
    return f"movi {draw(regs)}, {draw(imms)}"


@st.composite
def nullary_line(draw):
    return draw(st.sampled_from(["nop", "fldz", "fld1", "fdup", "fpop"]))


lines = st.one_of(rr_line(), ri_line(), mem_line(), movi_line(), nullary_line())


class TestAssemblerProperties:
    @given(st.lists(lines, min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_assembled_code_decodes_cleanly(self, body):
        source = "\n".join(body) + "\nret"
        fn = assemble_function("f", source)
        assert fn.size == (len(body) + 1) * INSN_SIZE
        for i in range(len(body) + 1):
            insn = decode(fn.code[i * INSN_SIZE : (i + 1) * INSN_SIZE])
            assert insn.op in Op
        # the final instruction is the RET
        assert decode(fn.code[-INSN_SIZE:]).op is Op.RET

    @given(st.lists(lines, min_size=1, max_size=10), st.integers(1, 5))
    @settings(max_examples=30)
    def test_branch_displacement_scales_with_body(self, body, extra):
        """A backward branch over the body must encode a displacement of
        exactly -(len(body)+1) words regardless of content."""
        source = "top:\n" + "\n".join(body) + "\njmp top\nret"
        fn = assemble_function("f", source)
        jmp = fn.insns[len(body)]
        assert jmp.op is Op.JMP
        assert jmp.imm == -(len(body) + 1) * INSN_SIZE

    @given(st.lists(lines, min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_registers_used_is_sound(self, body):
        """Every register named in the source appears in the static usage
        set (no under-reporting)."""
        source = "\n".join(body) + "\nret"
        fn = assemble_function("f", source)
        used = fn.registers_used()
        for line in body:
            for token in line.replace(",", " ").replace("[", " ").replace(
                "]", " "
            ).replace("+", " ").split():
                if token in REG_NAMES:
                    assert token in used, (token, line)
