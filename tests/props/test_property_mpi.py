"""Property-based tests on the MPI framing and protocol layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.adi import (
    ChannelProtocolError,
    MSG_CTS,
    MSG_EAGER,
    MSG_RNDV_DATA,
    MSG_RTS,
    pack_header,
    parse_packet,
)
from repro.mpi.channel import HEADER_SIZE, ChannelEndpoint

ranks = st.integers(-(2**31), 2**31 - 1)
tags = st.integers(-(2**31), 2**31 - 1)
types = st.sampled_from([MSG_EAGER, MSG_RTS, MSG_CTS, MSG_RNDV_DATA])
payloads = st.binary(max_size=256)


class TestFramingProperties:
    @given(ranks, ranks, tags, types, payloads, st.integers(0, 2**32 - 1))
    def test_roundtrip(self, src, dst, tag, mtype, payload, seq):
        pkt = pack_header(src, dst, tag, mtype, len(payload), seq) + payload
        msg = parse_packet(pkt)
        assert (msg.src, msg.dst, msg.tag, msg.mtype) == (src, dst, tag, mtype)
        assert msg.payload == payload
        assert msg.seq == seq

    @given(payloads, st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_single_bit_flip_never_escapes_silently_as_wrong_structure(
        self, payload, seed
    ):
        """A one-bit header flip either (a) still parses with exactly one
        field changed, or (b) raises ChannelProtocolError.  It can never
        change two fields at once or corrupt the payload."""
        pkt = bytearray(
            pack_header(3, 1, 7, MSG_EAGER, len(payload), 42) + payload
        )
        rng = np.random.default_rng(seed)
        bitpos = int(rng.integers(HEADER_SIZE * 8))
        pkt[bitpos // 8] ^= 1 << (bitpos % 8)
        try:
            msg = parse_packet(bytes(pkt))
        except ChannelProtocolError:
            return
        original = (3, 1, 7, MSG_EAGER, 42, 0)
        parsed = (msg.src, msg.dst, msg.tag, msg.mtype, msg.seq, msg.comm_id)
        changed = sum(a != b for a, b in zip(original, parsed))
        assert changed <= 1
        assert msg.payload == payload

    @given(st.binary(min_size=0, max_size=HEADER_SIZE - 1))
    def test_short_packets_always_fatal(self, junk):
        with pytest.raises(ChannelProtocolError):
            parse_packet(junk)


class TestChannelProperties:
    @given(st.lists(payloads, min_size=1, max_size=20))
    def test_fifo_and_byte_accounting(self, bodies):
        ep = ChannelEndpoint(0)
        for body in bodies:
            ep.push(pack_header(0, 0, 1, MSG_EAGER, len(body), 0) + body)
        received = []
        while (pkt := ep.recv()) is not None:
            received.append(bytes(pkt)[HEADER_SIZE:])
        assert received == bodies
        assert ep.bytes_received == sum(len(b) + HEADER_SIZE for b in bodies)
        assert ep.stats.packets == len(bodies)
        assert ep.stats.header_bytes == len(bodies) * HEADER_SIZE
        assert ep.stats.payload_bytes == sum(len(b) for b in bodies)
