"""The MPI_Init fault-injection wrapper (config-file path)."""

import pytest

from repro.injection.faults import Region
from repro.injection.wrappers import install, install_from_config_text
from repro.injection.faults import FaultSpec
from repro.mpi.simulator import Job, JobConfig
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY


def job():
    from repro.apps import WavetoyApp

    return Job(WavetoyApp(**SMALL_WAVETOY), JobConfig(nprocs=SMALL_NPROCS))


class TestInstall:
    def test_memory_fault_armed_via_pre_run_hook(self):
        j = job()
        spec = FaultSpec(
            Region.REGULAR_REG, 1, time_blocks=50, bit=2, reg_index=0
        )
        record = install(j, spec)
        assert j.vms[1].pending_hooks() == 0  # armed only at run time
        j.run()
        assert record.delivered

    def test_message_fault_armed(self):
        j = job()
        spec = FaultSpec(Region.MESSAGE, 1, bit=0, target_byte=60)
        record = install(j, spec)
        j.run()
        assert record.delivered


class TestConfigFilePath:
    def test_full_pipeline(self):
        j = job()
        record = install_from_config_text(
            j,
            """
            [injection]
            region = regular_reg
            rank = 2
            time = 100
            bit = 5
            reg = 6
            seed = 3
            """,
        )
        result = j.run()
        assert record.delivered
        assert record.detail == "esi"

    def test_bad_config_raises_before_run(self):
        from repro.injection.config import ConfigError

        with pytest.raises(ConfigError):
            install_from_config_text(job(), "[injection]\nregion = cache\n")
