"""Channel-level message fault injection."""

import pytest

from repro.errors import InvalidFaultSpec
from repro.injection.faults import FaultSpec, InjectionRecord, Region
from repro.injection.message_injector import MessageFaultInjector
from repro.mpi.channel import HEADER_SIZE
from repro.mpi.datatypes import MPI_DOUBLE
from repro.mpi.simulator import Job, JobConfig, JobStatus
from tests.mpi._util import GenericApp, buf_addr


def exchange_main(ctx):
    buf = buf_addr(ctx)
    sp = ctx.image.address_space
    if ctx.rank == 0:
        sp.store_f64(buf, 1.0)
        for _ in range(4):
            yield from ctx.comm.send(buf, 8, MPI_DOUBLE, 1, 1)
    else:
        for _ in range(4):
            yield from ctx.comm.recv(buf, 8, MPI_DOUBLE, 0, 1)


def run_msg_fault(target_byte: int, bit: int = 0, rank: int = 1):
    job = Job(GenericApp(exchange_main), JobConfig(nprocs=2, round_limit=500))
    spec = FaultSpec(Region.MESSAGE, rank, bit=bit, target_byte=target_byte)
    record = InjectionRecord(spec)
    MessageFaultInjector(job, spec, record).arm()
    result = job.run()
    return record, result, job


class TestDelivery:
    def test_payload_flip_recorded(self):
        # First packet: bytes [0, 48) header, [48, 112) payload.
        record, result, job = run_msg_fault(HEADER_SIZE + 5, bit=3)
        assert record.delivered
        assert record.detail == "payload"
        assert record.new_value == record.old_value ^ 8
        # Silent data corruption: job still completes.
        assert result.status is JobStatus.COMPLETED

    def test_header_flip_recorded(self):
        record, result, job = run_msg_fault(4, bit=1)  # src field, packet 1
        assert record.delivered
        assert record.detail == "header"

    def test_counter_crossing_in_later_packet(self):
        pkt = HEADER_SIZE + 64
        record, _, _ = run_msg_fault(2 * pkt + 10)
        assert record.delivered

    def test_target_beyond_traffic_is_undelivered(self):
        record, result, _ = run_msg_fault(10_000_000)
        assert not record.delivered
        assert result.status is JobStatus.COMPLETED

    def test_fires_exactly_once(self):
        record, _, job = run_msg_fault(HEADER_SIZE + 1)
        # bytes_received spans all packets but only one byte was flipped:
        # delivered stays True and old/new differ by exactly one bit.
        assert record.delivered
        assert bin(record.old_value ^ record.new_value).count("1") == 1


class TestHeaderConsequences:
    def test_magic_flip_crashes(self):
        record, result, _ = run_msg_fault(0, bit=6)  # magic byte 0
        assert record.delivered
        assert result.status is JobStatus.CRASHED
        assert any("p4_error" in l for l in result.stderr)

    def test_dst_flip_hangs(self):
        # dst field at bytes [8, 12): misrouted message is dropped; the
        # posted receive never completes.
        record, result, _ = run_msg_fault(8, bit=0)
        assert record.delivered
        assert result.status is JobStatus.HUNG

    def test_padding_flip_benign(self):
        record, result, _ = run_msg_fault(HEADER_SIZE - 4, bit=5)
        assert record.delivered
        assert record.detail == "header"
        assert result.status is JobStatus.COMPLETED


class TestValidation:
    def test_wrong_region(self):
        job = Job(GenericApp(exchange_main), JobConfig(nprocs=2))
        spec = FaultSpec(Region.HEAP, 0, bit=0)
        with pytest.raises(InvalidFaultSpec):
            MessageFaultInjector(job, spec, InjectionRecord(spec))

    def test_double_arm_rejected(self):
        job = Job(GenericApp(exchange_main), JobConfig(nprocs=2))
        spec = FaultSpec(Region.MESSAGE, 1, bit=0, target_byte=0)
        MessageFaultInjector(job, spec, InjectionRecord(spec)).arm()
        with pytest.raises(InvalidFaultSpec):
            MessageFaultInjector(job, spec, InjectionRecord(spec)).arm()
