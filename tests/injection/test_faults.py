"""Fault specification validation and FP bit-space mapping."""

import pytest

from repro.injection.faults import (
    FP_DATA_BITS,
    FP_SPECIAL_BITS,
    FP_TOTAL_BITS,
    FaultSpec,
    InjectionRecord,
    MEMORY_REGIONS,
    PROCESS_REGIONS,
    Region,
    fp_target_from_bitindex,
)


class TestRegions:
    def test_eight_regions(self):
        assert len(Region) == 8

    def test_region_classification(self):
        assert Region.HEAP in MEMORY_REGIONS
        assert Region.REGULAR_REG not in MEMORY_REGIONS
        assert Region.REGULAR_REG in PROCESS_REGIONS
        assert Region.MESSAGE not in PROCESS_REGIONS


class TestFaultSpecValidation:
    def test_regular_reg_ok(self):
        FaultSpec(Region.REGULAR_REG, 0, time_blocks=5, bit=31, reg_index=7)

    def test_regular_reg_requires_index(self):
        with pytest.raises(ValueError):
            FaultSpec(Region.REGULAR_REG, 0, bit=0)
        with pytest.raises(ValueError):
            FaultSpec(Region.REGULAR_REG, 0, bit=0, reg_index=8)

    def test_regular_reg_bit_range(self):
        with pytest.raises(ValueError):
            FaultSpec(Region.REGULAR_REG, 0, bit=32, reg_index=0)

    def test_fp_requires_target(self):
        with pytest.raises(ValueError):
            FaultSpec(Region.FP_REG, 0, bit=0)

    def test_message_requires_target_byte(self):
        with pytest.raises(ValueError):
            FaultSpec(Region.MESSAGE, 0, bit=0)
        FaultSpec(Region.MESSAGE, 0, bit=7, target_byte=100)

    def test_message_bit_range(self):
        with pytest.raises(ValueError):
            FaultSpec(Region.MESSAGE, 0, bit=8, target_byte=0)

    def test_memory_bit_range(self):
        with pytest.raises(ValueError):
            FaultSpec(Region.HEAP, 0, bit=9)

    def test_negative_rank_or_time(self):
        with pytest.raises(ValueError):
            FaultSpec(Region.HEAP, -1, bit=0)
        with pytest.raises(ValueError):
            FaultSpec(Region.HEAP, 0, time_blocks=-5, bit=0)


class TestFpBitSpace:
    def test_space_sizes(self):
        assert FP_DATA_BITS == 640  # 8 registers x 80 bits
        assert FP_TOTAL_BITS == FP_DATA_BITS + FP_SPECIAL_BITS

    def test_data_register_mapping(self):
        assert fp_target_from_bitindex(0) == ("st0", 0)
        assert fp_target_from_bitindex(79) == ("st0", 79)
        assert fp_target_from_bitindex(80) == ("st1", 0)
        assert fp_target_from_bitindex(639) == ("st7", 79)

    def test_special_register_mapping(self):
        assert fp_target_from_bitindex(640) == ("cwd", 0)
        assert fp_target_from_bitindex(640 + 16) == ("swd", 0)
        assert fp_target_from_bitindex(640 + 32) == ("twd", 0)

    def test_every_index_maps(self):
        seen = set()
        for i in range(FP_TOTAL_BITS):
            name, bit = fp_target_from_bitindex(i)
            seen.add(name)
        assert seen == {f"st{i}" for i in range(8)} | {
            "cwd", "swd", "twd", "fip", "fcs", "foo", "fos"
        }

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            fp_target_from_bitindex(FP_TOTAL_BITS)


class TestRecord:
    def test_defaults(self):
        rec = InjectionRecord(FaultSpec(Region.HEAP, 0, bit=1))
        assert not rec.delivered
        assert rec.notes == []
