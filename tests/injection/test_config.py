"""Injection configuration parsing (the MPI_Init wrapper's config file)."""

import pytest

from repro.injection.config import (
    ConfigError,
    InjectionConfig,
    format_config,
    parse_config,
)
from repro.injection.faults import FaultSpec, Region


class TestParse:
    def test_minimal(self):
        cfg = parse_config("[injection]\nregion = heap\n")
        assert cfg.spec.region is Region.HEAP
        assert cfg.spec.rank == 0
        assert cfg.seed == 0

    def test_full_register_config(self):
        cfg = parse_config(
            """
            [injection]
            region = regular_reg
            rank = 3
            time = 12000
            bit = 17
            reg = 2
            seed = 99
            """
        )
        spec = cfg.spec
        assert spec.region is Region.REGULAR_REG
        assert (spec.rank, spec.time_blocks, spec.bit, spec.reg_index) == (3, 12000, 17, 2)
        assert cfg.seed == 99

    def test_hex_address(self):
        cfg = parse_config(
            "[injection]\nregion = text\naddress = 0x08048010\nbit = 2\n"
        )
        assert cfg.spec.address == 0x08048010

    def test_message_config(self):
        cfg = parse_config(
            "[injection]\nregion = message\nrank = 1\ntarget_byte = 4096\nbit = 7\n"
        )
        assert cfg.spec.target_byte == 4096

    def test_comments_ignored(self):
        cfg = parse_config("[injection] ; setup\nregion = bss ; static\n")
        assert cfg.spec.region is Region.BSS


class TestErrors:
    def test_missing_region(self):
        with pytest.raises(ConfigError, match="region"):
            parse_config("[injection]\nrank = 1\n")

    def test_unknown_region_lists_valid(self):
        with pytest.raises(ConfigError, match="regular_reg"):
            parse_config("[injection]\nregion = l1cache\n")

    def test_bad_integer(self):
        with pytest.raises(ConfigError, match="integer"):
            parse_config("[injection]\nregion = heap\nrank = three\n")

    def test_key_outside_section(self):
        with pytest.raises(ConfigError, match="section"):
            parse_config("region = heap\n")

    def test_malformed_line(self):
        with pytest.raises(ConfigError, match="key = value"):
            parse_config("[injection]\nregion heap\n")

    def test_semantic_validation_surfaces(self):
        with pytest.raises(ConfigError):
            parse_config("[injection]\nregion = regular_reg\nbit = 40\nreg = 1\n")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(Region.REGULAR_REG, 1, time_blocks=10, bit=3, reg_index=5),
            FaultSpec(Region.FP_REG, 0, time_blocks=7, bit=70, fp_target="st3"),
            FaultSpec(Region.TEXT, 2, time_blocks=3, bit=1, address=0x8048200),
            FaultSpec(Region.MESSAGE, 1, bit=6, target_byte=12345),
        ],
    )
    def test_format_then_parse(self, spec):
        text = format_config(InjectionConfig(spec=spec, seed=42))
        cfg = parse_config(text)
        assert cfg.spec == spec
        assert cfg.seed == 42
