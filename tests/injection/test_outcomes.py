"""Outcome classification (the paper's six manifestation classes)."""

import pytest

from repro.injection.outcomes import (
    ERROR_CLASSES,
    Manifestation,
    OutcomeTally,
    classify,
)
from repro.mpi.simulator import JobResult, JobStatus


def result(status, outputs=None, stderr=None):
    return JobResult(
        status=status,
        detail="",
        stdout=[],
        stderr=stderr or [],
        outputs=outputs if outputs is not None else {"out": "ok"},
        rounds=1,
        blocks_per_rank=[0],
    )


REF = result(JobStatus.COMPLETED, outputs={"out": "ok"})


class TestClassify:
    def test_correct(self):
        assert classify(result(JobStatus.COMPLETED), REF) is Manifestation.CORRECT

    def test_incorrect_output(self):
        r = result(JobStatus.COMPLETED, outputs={"out": "bad"})
        assert classify(r, REF) is Manifestation.INCORRECT

    def test_crash(self):
        r = result(JobStatus.CRASHED, stderr=["p4_error: x"])
        assert classify(r, REF) is Manifestation.CRASH

    def test_crash_detected_by_stderr_scan(self):
        """The paper identifies crashes by MPICH messages in stderr."""
        r = result(JobStatus.COMPLETED, outputs={"out": "ok"},
                   stderr=["p4_error: interrupt SIGSEGV"])
        assert classify(r, REF) is Manifestation.CRASH

    def test_hang(self):
        assert classify(result(JobStatus.HUNG), REF) is Manifestation.HANG

    def test_app_detected(self):
        assert (
            classify(result(JobStatus.APP_DETECTED), REF)
            is Manifestation.APP_DETECTED
        )

    def test_mpi_detected(self):
        assert (
            classify(result(JobStatus.MPI_DETECTED), REF)
            is Manifestation.MPI_DETECTED
        )

    def test_custom_comparator(self):
        r = result(JobStatus.COMPLETED, outputs={"out": "OK"})
        assert (
            classify(r, REF, compare=lambda a, b: a["out"].lower() == b["out"].lower())
            is Manifestation.CORRECT
        )


class TestTally:
    def test_error_rate(self):
        t = OutcomeTally()
        for _ in range(6):
            t.add(Manifestation.CORRECT)
        t.add(Manifestation.CRASH)
        t.add(Manifestation.HANG)
        t.add(Manifestation.CRASH)
        t.add(Manifestation.INCORRECT)
        assert t.executions == 10
        assert t.errors == 4
        assert t.error_rate_percent == 40.0

    def test_manifestation_percent_of_errors(self):
        t = OutcomeTally()
        t.add(Manifestation.CORRECT)
        t.add(Manifestation.CRASH)
        t.add(Manifestation.CRASH)
        t.add(Manifestation.HANG)
        assert t.manifestation_percent(Manifestation.CRASH) == pytest.approx(200 / 3)
        assert t.manifestation_percent(Manifestation.HANG) == pytest.approx(100 / 3)
        assert sum(t.breakdown().values()) == pytest.approx(100.0)

    def test_empty_tally(self):
        t = OutcomeTally()
        assert t.error_rate_percent == 0.0
        assert t.manifestation_percent(Manifestation.CRASH) == 0.0

    def test_classes_are_disjoint_and_complete(self):
        assert len(ERROR_CLASSES) == 5
        assert Manifestation.CORRECT not in ERROR_CLASSES
