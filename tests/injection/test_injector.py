"""The ptrace-analogue memory/register injector."""

import numpy as np
import pytest

from repro.cpu.vm import VM
from repro.injection.faults import FaultSpec, InjectionRecord, Region
from repro.injection.injector import MemoryFaultInjector
from repro.memory.heap import ChunkTag
from repro.memory.process import ProcessImage
from repro.memory.symbols import Linker
from repro.mpi.library import add_mpi_library
from repro.mpi.simulator import Job, JobConfig

KERNEL = """
    push ebp
    mov ebp, esp
    movi eax, 0
    movi ecx, 0
lp: add eax, ecx
    addi ecx, 1
    cmpi ecx, 200
    jl lp
    mov esp, ebp
    pop ebp
    ret
"""


class VMApp:
    """Runs a register-heavy kernel with heap and stack state present."""

    name = "vmapp"

    def build_process(self, rank, nprocs, config):
        from repro.cpu.assembler import Program

        prog = Program()
        prog.add("kernel", KERNEL)
        linker = Linker()
        prog.add_to_linker(linker)
        linker.add_data("table", 256)
        linker.add_bss("zeros", 256)
        add_mpi_library(linker, text_scale=0.05, data_scale=0.05)
        image = ProcessImage.from_linker(linker, rank=rank, heap_size=1 << 16)
        prog.relocate(image)
        return image, VM(image)

    def main(self, ctx):
        heap = ctx.image.heap
        self.user_chunk = heap.malloc(128)
        with heap.inside_mpi():
            self.mpi_chunk = heap.malloc(128)
        # A stack frame whose return address is in user text.
        ctx.image.stack.push_frame(
            return_addr=ctx.image.addr_of("kernel"), args=(1, 2), locals_size=64
        )
        ctx.vm.call("kernel")
        yield None


def run_with(spec, rng_seed=0, app=None):
    app = app or VMApp()
    job = Job(app, JobConfig(nprocs=1))
    record = InjectionRecord(spec)
    injector = MemoryFaultInjector(job, spec, record, np.random.default_rng(rng_seed))
    job.pre_run_hooks.append(lambda j: injector.arm())
    result = job.run()
    return record, result, app, job


class TestRegisterInjection:
    def test_regular_register_flip_delivered(self):
        spec = FaultSpec(Region.REGULAR_REG, 0, time_blocks=50, bit=4, reg_index=0)
        record, result, _, _ = run_with(spec)
        assert record.delivered
        assert record.detail == "eax"
        assert record.new_value == record.old_value ^ (1 << 4)

    def test_fp_data_register_flip(self):
        spec = FaultSpec(Region.FP_REG, 0, time_blocks=50, bit=3, fp_target="st0")
        record, result, _, _ = run_with(spec)
        assert record.delivered
        assert record.detail == "st0"

    def test_fp_special_register_flip(self):
        spec = FaultSpec(Region.FP_REG, 0, time_blocks=50, bit=2, fp_target="twd")
        record, _, _, _ = run_with(spec)
        assert record.delivered
        assert record.new_value == record.old_value ^ 4


class TestStaticInjection:
    def test_data_flip_at_dictionary_address(self):
        app = VMApp()
        probe_job = Job(app, JobConfig(nprocs=1))
        addr = probe_job.images[0].addr_of("table") + 10
        spec = FaultSpec(Region.DATA, 0, time_blocks=50, bit=1, address=addr)
        record, result, _, job = run_with(spec)
        assert record.delivered
        assert record.symbol == "table"
        assert job.images[0].data.read_u8(addr) == 2

    def test_missing_address_rejected(self):
        spec = FaultSpec(Region.TEXT, 0, time_blocks=50, bit=0)
        from repro.errors import InvalidFaultSpec

        record, result, _, _ = run_with(spec)
        # the hook fires inside the VM; the job classifies the failure
        assert not record.delivered


class TestHeapInjection:
    def test_scan_hits_user_chunk_only(self):
        spec = FaultSpec(Region.HEAP, 0, time_blocks=50, bit=0)
        record, result, app, _ = run_with(spec)
        assert record.delivered
        assert app.user_chunk <= record.address < app.user_chunk + 128

    def test_no_user_chunks_means_undelivered(self):
        class MPIOnlyApp(VMApp):
            def main(self, ctx):
                with ctx.image.heap.inside_mpi():
                    ctx.image.heap.malloc(64)
                ctx.vm.call("kernel")
                yield None

        spec = FaultSpec(Region.HEAP, 0, time_blocks=50, bit=0)
        record, result, _, _ = run_with(spec, app=MPIOnlyApp())
        assert not record.delivered
        assert any("no user heap chunk" in n for n in record.notes)


class TestStackInjection:
    def test_flip_lands_in_live_stack(self):
        spec = FaultSpec(Region.STACK, 0, time_blocks=50, bit=0)
        record, result, _, job = run_with(spec)
        assert record.delivered
        seg = job.images[0].stack_segment
        assert seg.contains(record.address)
        assert record.detail == "stack frame"


class TestValidation:
    def test_wrong_region_rejected(self):
        from repro.errors import InvalidFaultSpec

        job = Job(VMApp(), JobConfig(nprocs=1))
        spec = FaultSpec(Region.MESSAGE, 0, bit=0, target_byte=0)
        with pytest.raises(InvalidFaultSpec):
            MemoryFaultInjector(job, spec, InjectionRecord(spec), np.random.default_rng())

    def test_rank_out_of_range_rejected(self):
        from repro.errors import InvalidFaultSpec

        job = Job(VMApp(), JobConfig(nprocs=1))
        spec = FaultSpec(Region.HEAP, 3, bit=0)
        with pytest.raises(InvalidFaultSpec):
            MemoryFaultInjector(job, spec, InjectionRecord(spec), np.random.default_rng())


class TestStuckAtFaults:
    """Section 8.1: persistent faults re-asserted by the injector."""

    def test_register_stuck_at_reasserts(self):
        from repro.injection.faults import Persistence

        spec = FaultSpec(
            Region.REGULAR_REG, 0, time_blocks=100, bit=0, reg_index=1,
            persistence=Persistence.STUCK_AT_0, reassert_blocks=8,
        )
        record, result, _, job = run_with(spec)
        assert record.delivered
        assert sum("reasserted" in n for n in record.notes) > 10

    def test_memory_stuck_at_defeats_overwrite(self):
        """A transient flip into a constantly rewritten cell heals; the
        stuck-at version keeps the bit forced."""
        from repro.injection.faults import Persistence

        app = VMApp()
        probe = Job(app, JobConfig(nprocs=1))
        addr = probe.images[0].addr_of("table")
        spec = FaultSpec(
            Region.DATA, 0, time_blocks=100, bit=3, address=addr,
            persistence=Persistence.STUCK_AT_1, reassert_blocks=16,
        )
        record, result, _, job = run_with(spec)
        assert record.delivered
        assert job.images[0].data.read_u8(addr) & 0b1000

    def test_fp_stuck_at_rejected(self):
        from repro.errors import InvalidFaultSpec
        from repro.injection.faults import Persistence

        job = Job(VMApp(), JobConfig(nprocs=1))
        spec = FaultSpec(
            Region.FP_REG, 0, time_blocks=1, bit=0, fp_target="st0",
            persistence=Persistence.STUCK_AT_1,
        )
        with pytest.raises(InvalidFaultSpec):
            MemoryFaultInjector(
                job, spec, InjectionRecord(spec), np.random.default_rng()
            )

    def test_message_stuck_at_rejected_at_spec_level(self):
        from repro.injection.faults import Persistence

        with pytest.raises(ValueError, match="transient"):
            FaultSpec(
                Region.MESSAGE, 0, bit=0, target_byte=1,
                persistence=Persistence.STUCK_AT_0,
            )

    def test_reassert_period_validated(self):
        with pytest.raises(ValueError, match="reassert"):
            FaultSpec(Region.HEAP, 0, bit=0, reassert_blocks=0)
