"""Fault dictionary: user-only static addresses."""

import numpy as np
import pytest

from repro.errors import InvalidFaultSpec
from repro.injection.dictionary import FaultDictionary
from tests.conftest import build_image


@pytest.fixture
def image():
    img, _ = build_image(
        {"kernel": "movi eax, 1\nret"},
        data={"user_table": 512},
        bss={"user_zeros": 256},
        mpi_lib=True,
    )
    return img


class TestConstruction:
    def test_sections_populated(self, image, rng):
        d = FaultDictionary(image, rng, entries_per_section=256)
        for section in ("text", "data", "bss"):
            assert d.size(section) > 0

    def test_entries_resolve_to_user_symbols(self, image, rng):
        d = FaultDictionary(image, rng, entries_per_section=512)
        mpi_names = {s.name for s in image.symtab.symbols(library="mpi")}
        for section in ("text", "data", "bss"):
            for entry in d.entries[section]:
                assert entry.symbol not in mpi_names
                sym = image.symtab.resolve(entry.address)
                assert sym is not None and sym.library == "user"

    def test_addresses_within_section(self, image, rng):
        d = FaultDictionary(image, rng, entries_per_section=128)
        for entry in d.entries["data"]:
            assert image.data.contains(entry.address)

    def test_invalid_entry_count(self, image, rng):
        with pytest.raises(ValueError):
            FaultDictionary(image, rng, entries_per_section=0)


class TestSampling:
    def test_sample_returns_entry(self, image, rng):
        d = FaultDictionary(image, rng)
        e = d.sample("text", rng)
        assert e.section == "text"

    def test_sample_empty_section_raises(self, rng):
        img, _ = build_image({"k": "ret"}, bss={"b": 8})
        d = FaultDictionary(img, rng)
        assert d.size("data") == 0
        with pytest.raises(InvalidFaultSpec):
            d.sample("data", rng)

    def test_sampling_is_byte_uniform_across_symbols(self, rng):
        """A symbol 9x larger must receive ~9x the entries."""
        img, _ = build_image(
            {"k": "ret"}, data={"small": 64, "big": 64 * 9}
        )
        d = FaultDictionary(img, rng, entries_per_section=4096)
        by_symbol = {}
        for e in d.entries["data"]:
            by_symbol[e.symbol] = by_symbol.get(e.symbol, 0) + 1
        ratio = by_symbol["big"] / by_symbol["small"]
        assert 6 < ratio < 13
