"""Campaign driver tests (small campaigns over the wavetoy miniature)."""

import numpy as np
import pytest

from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.injection.outcomes import Manifestation
from repro.mpi.simulator import JobConfig
from repro.sampling.plans import CampaignPlan
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY


def small_campaign(seed=3):
    from repro.apps import WavetoyApp

    return Campaign(
        lambda: WavetoyApp(**SMALL_WAVETOY),
        JobConfig(nprocs=SMALL_NPROCS),
        plan=CampaignPlan(per_region={r.value: 4 for r in Region}),
        seed=seed,
    )


class TestReference:
    def test_reference_profile(self):
        c = small_campaign()
        ref = c.reference()
        assert ref.result.completed
        assert len(ref.blocks_per_rank) == SMALL_NPROCS
        assert all(b > 0 for b in ref.blocks_per_rank)
        assert any(b > 0 for b in ref.received_bytes_per_rank)
        assert ref.block_limit > max(ref.blocks_per_rank)
        assert ref.round_limit > ref.rounds
        assert ref.dictionary.size("text") > 0

    def test_reference_cached(self):
        c = small_campaign()
        assert c.reference() is c.reference()


class TestSampling:
    @pytest.mark.parametrize("region", list(Region))
    def test_specs_valid_for_every_region(self, region, rng):
        c = small_campaign()
        for i in range(5):
            spec = c.sample_spec(region, np.random.default_rng(i))
            assert spec.region is region
            assert 0 <= spec.rank < SMALL_NPROCS
            if region is not Region.MESSAGE:
                assert spec.time_blocks >= 1

    def test_message_target_within_volume(self):
        c = small_campaign()
        ref = c.reference()
        for i in range(10):
            spec = c.sample_spec(Region.MESSAGE, np.random.default_rng(i))
            assert spec.target_byte < max(ref.received_bytes_per_rank)


class TestExecution:
    def test_run_region_tally(self):
        c = small_campaign()
        row = c.run_region(Region.REGULAR_REG, 5)
        assert row.executions == 5
        assert len(row.records) == 5
        assert 0 <= row.error_rate_percent <= 100
        assert row.estimation_error_percent > 0

    def test_injection_reproducible(self):
        c1 = small_campaign(seed=11)
        c2 = small_campaign(seed=11)
        r1 = c1.run_region(Region.MESSAGE, 4)
        r2 = c2.run_region(Region.MESSAGE, 4)
        assert [m for _, _, m in r1.records] == [m for _, _, m in r2.records]

    def test_full_run_covers_requested_regions(self):
        c = small_campaign()
        result = c.run(regions=(Region.HEAP, Region.MESSAGE))
        assert set(result.regions) == {Region.HEAP, Region.MESSAGE}
        assert result.total_injections() == 8
        assert result.app_name == "wavetoy"

    def test_fault_free_determinism_guard(self):
        """Two fresh fault-free runs must classify as CORRECT against the
        reference - otherwise the whole campaign is unsound."""
        c = small_campaign()
        ref = c.reference()
        from repro.mpi.simulator import Job

        result = Job(c.app_factory(), c.config).run()
        from repro.injection.outcomes import classify

        assert classify(result, ref.result, c.compare) is Manifestation.CORRECT
