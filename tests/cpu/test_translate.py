"""The block translator (PR 8 tentpole): planning, generated-unit
semantics, and the dual-mode dispatch loop's exactness guarantees."""

import pytest

from repro.cpu import ops, translate
from repro.cpu.assembler import assemble_function
from repro.cpu.isa import INSN_SIZE, Op
from repro.errors import SimFPE, SimSegfault
from repro.staticanalysis.cfg import ControlFlowGraph
from tests.conftest import build_image


def plan_of(source: str, name: str = "f"):
    fn = assemble_function(name, source)
    insns = list(translate.decode_stream(bytes(fn.code)))
    cfg = ControlFlowGraph.from_function(fn)
    return translate.plan_function(name, insns, cfg)


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
class TestPlanning:
    def test_straight_line_is_one_unit(self):
        plan = plan_of("movi eax, 1\naddi eax, 2\nret")
        assert len(plan.units) == 1
        assert plan.units[0].end_kind == "terminator"
        assert plan.translated_insns == 3
        assert not plan.skipped

    def test_call_splits_unit(self):
        plan = plan_of("movi eax, 1\ncall @callee\naddi eax, 1\nret")
        kinds = [u.end_kind for u in plan.units]
        assert "call" in kinds
        assert plan.call_splits == 1
        # every instruction still belongs to some unit
        assert plan.translated_insns == plan.n_insns

    def test_cost_split_before_written_length_register(self):
        # vadd's length register ecx is written earlier in the block, so
        # its entry-time value would be stale: the planner must split.
        plan = plan_of(
            "movi ecx, 16\n"
            "vbin.add eax, ebx, edx, ecx\n"
            "ret",
        )
        assert plan.cost_splits == 1
        assert [u.end_kind for u in plan.units][0] == "cost_split"
        assert plan.translated_insns == plan.n_insns

    def test_unwritten_length_register_stays_fused(self):
        plan = plan_of("vbin.add eax, ebx, edx, ecx\nret")
        assert plan.cost_splits == 0
        assert len(plan.units) == 1


# ----------------------------------------------------------------------
# generated-unit semantics: fast run == interpreted run, bit for bit
# ----------------------------------------------------------------------
def run_both(sources, entry, args=(), data=None, bss=None):
    """Run the same kernel in both modes; return (exc, state) pairs."""
    out = []
    for fastpath in (False, True):
        image, vm = build_image(dict(sources), data=data, bss=bss)
        vm.fastpath = fastpath
        exc = None
        try:
            vm.call(entry, args)
        except Exception as e:  # noqa: BLE001 - compared type+args below
            exc = e
        out.append(
            (
                type(exc),
                exc.args if exc else None,
                vm.regs.capture_state(),
                vm.fpu.capture_state(),
                vm.clock.blocks,
                vm.instructions_retired,
                tuple(
                    (s.name, s.buf.tobytes()) for s in vm.space.segments()
                ),
            )
        )
    return out


MIXED = """
    movi eax, 0
    movi ecx, 0
    movi edx, 64
loop:
    add eax, ecx
    imul eax, ecx
    xor eax, edx
    shr eax, 1
    neg eax
    addi ecx, 1
    cmpi ecx, 19
    jl loop
    movi ebx, $scratch
    fldimm 3
    vfill ebx, edx
    fpop
    vbin.add ebx, ebx, ebx, edx
    ret
"""


class TestBitIdentity:
    def test_mixed_scalar_vector_kernel(self):
        interp, fast = run_both(
            {"mixed": MIXED}, "mixed", bss={"scratch": 1024}
        )
        assert interp == fast

    def test_signed_boundary_values(self):
        # INT_MIN negation/division corner cases through both engines
        src = """
    movi eax, 1
    shl eax, 31
    neg eax
    mov ebx, eax
    movi ecx, 0
    addi ecx, -1
    mov edx, ebx
    idiv edx, ecx
    mov esi, ebx
    irem esi, ecx
    cmp ebx, ecx
    ret
"""
        interp, fast = run_both({"f": src}, "f")
        assert interp == fast

    def test_division_by_zero_mid_unit(self):
        src = """
    movi eax, 7
    movi ebx, 0
    addi eax, 1
    idiv eax, ebx
    addi eax, 100
    ret
"""
        interp, fast = run_both({"f": src}, "f")
        assert interp[0] is SimFPE
        assert interp == fast

    def test_segfault_mid_unit(self):
        src = """
    movi eax, 5
    movi ebx, 0x00000010
    addi eax, 2
    store [ebx], eax
    addi eax, 100
    ret
"""
        interp, fast = run_both({"f": src}, "f")
        assert interp[0] is SimSegfault
        # eip, clock, retirement and counters at the fault instant match
        assert interp == fast

    def test_vector_fault_partial_cost(self):
        # second vector op faults: the unit must retire exactly the
        # prefix (including the first op's data-dependent cost)
        src = """
    movi eax, $scratch
    movi ecx, 16
    vbin.add eax, eax, eax, ecx
    movi ebx, 0x00000010
    vbin.add ebx, ebx, ebx, ecx
    ret
"""
        interp, fast = run_both({"f": src}, "f", bss={"scratch": 256})
        assert interp[0] is SimSegfault
        assert interp == fast


# ----------------------------------------------------------------------
# dispatch-loop behavior
# ----------------------------------------------------------------------
class TestDispatch:
    def test_fastpath_stats_account_every_instruction(self):
        image, vm = build_image(
            {"mixed": MIXED}, bss={"scratch": 1024}
        )
        vm.fastpath = True
        vm.call("mixed")
        stats = vm.fastpath_stats
        executed = (
            stats["translated_insns"]
            + stats["interpreted_insns"]
            + stats["horizon_insns"]
        )
        assert executed == vm.instructions_retired
        assert stats["translated_units"] > 0
        assert stats["translated_insns"] > stats["interpreted_insns"]

    def test_text_corruption_retranslates_current_bytes(self):
        src = "f:\n" + "addi eax, 1\n" * 8 + "ret"
        image, vm = build_image({"f": src})
        vm.fastpath = True
        sym = next(
            s for s in image.symtab.symbols("text") if s.name == "f"
        )
        # corrupt the 5th instruction into a different valid word
        # mid-run via a hook: the engine must notice the version bump
        # and re-translate against the corrupted bytes
        flipped_at = []

        def corrupt(v):
            image.text.flip_bit(sym.addr + 4 * INSN_SIZE, 1)
            flipped_at.append(v.clock.blocks)

        vm.schedule_hook(3, corrupt)
        vm.call("f")
        assert flipped_at
        assert vm.fastpath_stats["retranslations"] > 0

        # and the corrupted outcome equals the interpreter's on the
        # same corrupted image
        image2, vm2 = build_image({"f": src})
        sym2 = next(
            s for s in image2.symtab.symbols("text") if s.name == "f"
        )
        vm2.schedule_hook(
            3, lambda v: image2.text.flip_bit(sym2.addr + 4 * INSN_SIZE, 1)
        )
        vm2.call("f")
        assert vm2.regs.capture_state() == vm.regs.capture_state()
        assert vm2.clock.blocks == vm.clock.blocks

    def test_translation_cached_per_digest(self):
        fn = assemble_function("f", "movi eax, 3\nret")
        t1 = translate.translation_for("f", fn.code, 0x1000)
        t2 = translate.translation_for("f", bytes(fn.code), 0x1000)
        assert t1 is t2
        t3 = translate.translation_for("f", fn.code, 0x2000)
        assert t3 is not t1

    def test_undecodable_function_translates_to_empty(self):
        assert translate.translation_for("bad", b"\xff" * 8, 0) == {}
        assert translate.translation_for("odd", b"\x00" * 9, 0) == {}


# ----------------------------------------------------------------------
# audit surface
# ----------------------------------------------------------------------
class TestAudit:
    def test_audit_counts_are_consistent(self):
        from repro.staticanalysis.lint import iter_shipped_kernels

        for owner, fn in iter_shipped_kernels():
            rep = translate.audit_function(fn)
            assert rep["insns"] == len(fn.code) // INSN_SIZE
            assert (
                rep["translated_insns"] + rep["interpreted_insns"]
                == rep["insns"]
            )
            assert len(rep["untranslatable"]) == rep["interpreted_insns"]

    def test_audit_reports_undecodable(self):
        class FakeFn:
            name = "junk"
            code = b"\xff" * 16
            relocations = ()

        rep = translate.audit_function(FakeFn())
        assert rep["reason"] is not None
        assert rep["translated_insns"] == 0


def test_exec_table_covers_every_opcode():
    assert set(ops.EXEC) == set(Op)
