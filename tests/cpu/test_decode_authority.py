"""Single decode authority (PR 8 satellite).

The VM fetch path, the static CFG builder and the block translator must
all consume the *same* decode of every shipped kernel.  Before this PR,
``VM._fetch`` and ``staticanalysis.cfg.decode_function`` decoded code
bytes independently; both now route through :mod:`repro.cpu.decoder`,
pinned here by comparing the Insn streams instruction by instruction.
"""

import pytest

from repro.cpu import decoder
from repro.cpu.isa import INSN_SIZE, UndefinedOpcode
from repro.staticanalysis.cfg import decode_function
from repro.staticanalysis.lint import iter_shipped_kernels

KERNELS = list(iter_shipped_kernels())
IDS = [f"{owner}:{fn.name}" for owner, fn in KERNELS]


@pytest.mark.parametrize("owner,fn", KERNELS, ids=IDS)
def test_cfg_stream_matches_decoder_stream(owner, fn):
    assert decode_function(fn.code) == list(decoder.decode_stream(fn.code))


@pytest.mark.parametrize("owner,fn", KERNELS, ids=IDS)
def test_vm_fetch_stream_matches_cfg_stream(owner, fn):
    """Build the owning application's rank-0 image and fetch the linked
    kernel word by word through the VM: the stream must equal the CFG's
    decode of the same linked bytes (relocations applied)."""
    from repro.apps import APPLICATION_SUITE
    from repro.mpi.simulator import JobConfig

    factory = APPLICATION_SUITE.get(owner)
    if factory is None:
        pytest.skip(f"{owner} is not a suite application")
    app = factory()
    config = JobConfig(nprocs=2)
    image, vm = app.build_process(0, config.nprocs, config)
    sym = next(
        s for s in image.symtab.symbols("text") if s.name == fn.name
    )
    linked = image.text.read_bytes(sym.addr, sym.size)
    expected = decode_function(linked)
    fetched = [
        vm._fetch(sym.addr + INSN_SIZE * i) for i in range(len(expected))
    ]
    assert fetched == expected


def test_stream_decode_is_cached_by_digest():
    code = KERNELS[0][1].code
    first = decoder.decode_stream(code)
    again = decoder.decode_stream(bytes(code))
    assert first is again  # same tuple object: digest-keyed cache hit


def test_decode_failure_is_cached_and_reraised():
    bad = bytes([0xFF] * INSN_SIZE)
    with pytest.raises(UndefinedOpcode):
        decoder.decode_stream(bad)
    with pytest.raises(UndefinedOpcode):
        decoder.decode_stream(bad)
    assert decoder.try_decode_stream(bad) is None


def test_misaligned_stream_rejected():
    with pytest.raises(ValueError):
        decoder.decode_stream(b"\x00" * (INSN_SIZE + 1))
