"""Unit tests for instruction encoding/decoding."""

import pytest

from repro.cpu.isa import (
    INSN_SIZE,
    BRANCH_OPS,
    Insn,
    Op,
    RedOp,
    UndefinedOpcode,
    VecOp,
    decode,
    disassemble,
    encode,
)


class TestEncodeDecode:
    def test_roundtrip_all_fields(self):
        insn = Insn(Op.VBIN, r1=1, r2=2, r3=3, r4=4, subop=5, imm=-1234)
        assert decode(encode(insn)) == insn

    def test_word_size(self):
        assert len(encode(Insn(Op.NOP))) == INSN_SIZE

    def test_every_opcode_roundtrips(self):
        for op in Op:
            insn = Insn(op, r1=7, r2=3, imm=42)
            assert decode(encode(insn)).op is op

    def test_undefined_opcode_raises(self):
        word = bytes([0xEE]) + bytes(7)
        with pytest.raises(UndefinedOpcode) as err:
            decode(word)
        assert err.value.opcode == 0xEE

    def test_zero_word_is_undefined(self):
        # All-zero memory must not decode (jumping into zeroed data
        # yields SIGILL, not silent NOPs).
        with pytest.raises(UndefinedOpcode):
            decode(bytes(8))

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            decode(b"\x01" * 7)

    def test_register_field_range_checked(self):
        with pytest.raises(ValueError):
            encode(Insn(Op.MOV, r1=16))

    def test_imm_range_checked(self):
        with pytest.raises(ValueError):
            encode(Insn(Op.MOVI, imm=2**31))

    def test_subop_range_checked(self):
        with pytest.raises(ValueError):
            encode(Insn(Op.VBIN, subop=256))

    def test_negative_imm_roundtrip(self):
        assert decode(encode(Insn(Op.JMP, imm=-8))).imm == -8


class TestExhaustiveRoundTrip:
    """The AVF text map's foundation: every defined opcode round-trips
    through encode/decode with all fields intact, and every byte value
    outside the opcode table raises - so a static re-decode of a flipped
    word predicts exactly what the VM's fetch path would do."""

    def test_every_opcode_roundtrips_all_fields(self):
        for op in Op:
            for insn in (
                Insn(op),
                Insn(op, r1=15, r2=8, r3=7, r4=1, subop=255, imm=2**31 - 1),
                Insn(op, r1=1, r2=2, r3=3, r4=4, subop=9, imm=-(2**31)),
            ):
                assert decode(encode(insn)) == insn

    def test_every_undefined_opcode_byte_raises(self):
        defined = {int(op) for op in Op}
        undefined = set(range(256)) - defined
        assert undefined, "opcode space unexpectedly saturated"
        for value in undefined:
            word = bytes([value]) + bytes(INSN_SIZE - 1)
            with pytest.raises(UndefinedOpcode) as err:
                decode(word)
            assert err.value.opcode == value

    def test_defined_opcodes_never_raise(self):
        for op in Op:
            word = bytes([int(op)]) + bytes(INSN_SIZE - 1)
            assert decode(word).op is op


class TestBitFlips:
    def test_opcode_flip_changes_instruction(self):
        word = bytearray(encode(Insn(Op.ADD, r1=0, r2=1)))
        word[0] ^= 0x01  # ADD (0x20) -> SUB (0x21)
        assert decode(bytes(word)).op is Op.SUB

    def test_register_field_flip(self):
        word = bytearray(encode(Insn(Op.MOV, r1=0, r2=1)))
        word[1] ^= 0x10  # r1 0 -> 1
        assert decode(bytes(word)).r1 == 1

    def test_imm_flip(self):
        word = bytearray(encode(Insn(Op.MOVI, r1=0, imm=0)))
        word[4] ^= 0x80
        assert decode(bytes(word)).imm == 128

    def test_some_opcode_flips_are_undefined(self):
        # Flipping the top bit of most opcodes leaves the defined range.
        word = bytearray(encode(Insn(Op.ADD)))
        word[0] ^= 0x80
        with pytest.raises(UndefinedOpcode):
            decode(bytes(word))


class TestMetadata:
    def test_branch_ops_classified(self):
        assert Op.JZ in BRANCH_OPS
        assert Op.CALL not in BRANCH_OPS

    def test_vecop_and_redop_values_fit_subop(self):
        assert all(0 <= int(v) < 256 for v in VecOp)
        assert all(0 <= int(v) < 256 for v in RedOp)

    def test_disassemble(self):
        assert "ADD" in disassemble(encode(Insn(Op.ADD, r1=1, r2=2)))
        assert "undefined" in disassemble(bytes([0xEE]) + bytes(7))
