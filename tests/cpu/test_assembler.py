"""Unit tests for the assembler."""

import pytest

from repro.cpu.assembler import AssemblerError, Program, assemble_function
from repro.cpu.isa import INSN_SIZE, Op, RedOp, VecOp, decode


class TestBasics:
    def test_simple_function(self):
        fn = assemble_function("f", "movi eax, 5\nret")
        assert len(fn.insns) == 2
        assert fn.insns[0].op is Op.MOVI
        assert fn.insns[0].imm == 5
        assert fn.insns[1].op is Op.RET
        assert fn.size == 2 * INSN_SIZE

    def test_comments_and_blank_lines(self):
        fn = assemble_function("f", "; header\n\n  nop ; trailing\nret\n")
        assert [i.op for i in fn.insns] == [Op.NOP, Op.RET]

    def test_hex_immediates(self):
        fn = assemble_function("f", "movi ebx, 0x10\nret")
        assert fn.insns[0].imm == 16

    def test_code_decodes(self):
        fn = assemble_function("f", "add eax, ecx\nret")
        insn = decode(fn.code[:INSN_SIZE])
        assert insn.op is Op.ADD and insn.r1 == 0 and insn.r2 == 1


class TestMemoryOperands:
    def test_load_store(self):
        fn = assemble_function("f", "load eax, [ebp+8]\nstore [esi-4], ecx\nret")
        assert fn.insns[0].imm == 8 and fn.insns[0].r2 == 5
        assert fn.insns[1].imm == -4 and fn.insns[1].r1 == 6 and fn.insns[1].r2 == 1

    def test_bare_register_operand(self):
        fn = assemble_function("f", "fld [esi]\nret")
        assert fn.insns[0].imm == 0

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble_function("f", "load eax, [nope+8]\nret")


class TestBranches:
    def test_backward_branch(self):
        fn = assemble_function(
            "f", "movi ecx, 0\nlp: addi ecx, 1\ncmpi ecx, 3\njl lp\nret"
        )
        jl = fn.insns[3]
        # from insn 4 back to insn 1: displacement -3 words
        assert jl.imm == -3 * INSN_SIZE

    def test_forward_branch(self):
        fn = assemble_function("f", "jmp out\nnop\nout: ret")
        assert fn.insns[0].imm == 1 * INSN_SIZE

    def test_label_on_own_line(self):
        fn = assemble_function("f", "start:\n  nop\n  jmp start\n  ret")
        assert fn.insns[1].imm == -2 * INSN_SIZE

    def test_undefined_label(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble_function("f", "jmp nowhere\nret")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble_function("f", "a: nop\na: ret")


class TestVectorSyntax:
    def test_vbin_suffix(self):
        fn = assemble_function("f", "vbin.mul eax, ecx, edx, ebx\nret")
        assert fn.insns[0].subop == VecOp.MUL
        assert (fn.insns[0].r1, fn.insns[0].r4) == (0, 3)

    def test_vred_dot_takes_three(self):
        fn = assemble_function("f", "vred.dot eax, ecx, edx\nret")
        assert fn.insns[0].subop == RedOp.DOT

    def test_vred_sum_takes_two(self):
        fn = assemble_function("f", "vred.sum eax, ecx\nret")
        assert fn.insns[0].subop == RedOp.SUM
        with pytest.raises(AssemblerError):
            assemble_function("f", "vred.sum eax, ecx, edx\nret")

    def test_unknown_suffix(self):
        with pytest.raises(AssemblerError, match="suffix"):
            assemble_function("f", "vbin.pow eax, ecx, edx, ebx\nret")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble_function("f", "frobnicate eax\nret")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects 2"):
            assemble_function("f", "mov eax\nret")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError, match="unknown register"):
            assemble_function("f", "mov rax, eax\nret")

    def test_call_requires_at(self):
        with pytest.raises(AssemblerError, match="@function"):
            assemble_function("f", "call g\nret")

    def test_error_includes_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble_function("f", "nop\nbogus op\nret")


class TestProgramAndRelocation:
    def test_relocations_recorded(self):
        prog = Program()
        fn = prog.add("f", "movi esi, $table\ncall @g\nret")
        prog.add("g", "ret")
        assert {r.symbol for r in fn.relocations} == {"table", "g"}

    def test_duplicate_function(self):
        prog = Program()
        prog.add("f", "ret")
        with pytest.raises(ValueError):
            prog.add("f", "nop\nret")

    def test_relocation_patches_linked_image(self):
        from tests.conftest import build_image

        image, vm = build_image(
            {
                "main": "movi esi, $table\nload eax, [esi]\nret",
            },
            data={"table": 8},
        )
        image.data.write_u32(image.addr_of("table"), 77)
        assert vm.call("main") == 77

    def test_call_relocation_executes(self):
        from tests.conftest import build_image

        image, vm = build_image(
            {
                "main": "call @leaf\nret",
                "leaf": "movi eax, 9\nret",
            }
        )
        assert vm.call("main") == 9

    def test_registers_used_static(self):
        fn = assemble_function("f", "mov eax, ecx\nvred.sum esi, edi\nret")
        assert fn.registers_used() == {"eax", "ecx", "esi", "edi"}
