"""Unit tests for the x87 FPU model."""

import math

import pytest

from repro.cpu.fpu import FPU, FPU_SPECIAL_REGS, TagValue


class TestStack:
    def test_push_pop(self):
        fpu = FPU()
        fpu.push(1.5)
        fpu.push(2.5)
        assert fpu.pop() == 2.5
        assert fpu.pop() == 1.5

    def test_read_st_indexing(self):
        fpu = FPU()
        fpu.push(1.0)
        fpu.push(2.0)
        assert fpu.read_st(0) == 2.0
        assert fpu.read_st(1) == 1.0

    def test_underflow_yields_nan(self):
        fpu = FPU()
        assert math.isnan(fpu.read_st(0))
        assert fpu.swd & 0x41  # stack-fault bits set

    def test_exchange(self):
        fpu = FPU()
        fpu.push(1.0)
        fpu.push(2.0)
        fpu.exchange(1)
        assert fpu.read_st(0) == 1.0
        assert fpu.read_st(1) == 2.0

    def test_depth_statistics(self):
        fpu = FPU()
        fpu.push(1.0)
        fpu.push(2.0)
        fpu.pop()
        assert fpu.depth == 1
        assert fpu.max_depth == 2
        assert fpu.registers_in_use() == 1


class TestTagWord:
    def test_initially_all_empty(self):
        fpu = FPU()
        assert fpu.twd == 0xFFFF

    def test_tags_track_values(self):
        fpu = FPU()
        fpu.push(0.0)
        assert fpu.tag_of(fpu.top) == TagValue.ZERO
        fpu.push(1.0)
        assert fpu.tag_of(fpu.top) == TagValue.VALID
        fpu.push(math.nan)
        assert fpu.tag_of(fpu.top) == TagValue.SPECIAL

    def test_tag_flip_valid_to_zero_reads_zero(self):
        """The paper's TWD finding: a tag flip turns a valid number into
        zero or NaN."""
        fpu = FPU()
        fpu.push(42.0)
        phys = fpu.top
        assert fpu.tag_of(phys) == TagValue.VALID  # 0b00
        fpu.flip_special_bit("twd", 2 * phys)  # VALID(00) -> ZERO(01)
        assert fpu.read_st(0) == 0.0

    def test_tag_flip_valid_to_special_reads_nan(self):
        fpu = FPU()
        fpu.push(42.0)
        phys = fpu.top
        fpu.flip_special_bit("twd", 2 * phys + 1)  # VALID(00) -> SPECIAL(10)
        assert math.isnan(fpu.read_st(0))


class TestSpecialRegisters:
    def test_power_on_control_word(self):
        assert FPU().cwd == 0x037F  # exceptions masked

    def test_all_seven_paper_registers_exist(self):
        fpu = FPU()
        assert FPU_SPECIAL_REGS == ("cwd", "swd", "twd", "fip", "fcs", "foo", "fos")
        for name in FPU_SPECIAL_REGS:
            assert hasattr(fpu, name)

    def test_special_flip_roundtrip(self):
        fpu = FPU()
        before = fpu.fip
        fpu.flip_special_bit("fip", 12)
        assert fpu.fip == before ^ (1 << 12)

    def test_flip_validation(self):
        fpu = FPU()
        with pytest.raises(ValueError):
            fpu.flip_special_bit("cwd", 16)
        with pytest.raises(ValueError):
            fpu.flip_special_bit("nope", 0)

    def test_inert_registers_do_not_affect_data(self):
        """FIP/FCS/FOO/FOS flips never perturb arithmetic (the paper
        found most special-register injections benign)."""
        fpu = FPU()
        fpu.push(3.25)
        for name in ("fip", "fcs", "foo", "fos", "swd", "cwd"):
            fpu.flip_special_bit(name, 3)
        assert fpu.read_st(0) == 3.25


class TestDataRegisterBits:
    def test_low_mantissa_flip_discarded_on_double_store(self):
        """80-bit registers carry guard bits that a 64-bit store
        discards - one cause of the paper's low FP error rate."""
        fpu = FPU()
        fpu.push(1.0)
        before = fpu.to_double(fpu.read_st(0))
        fpu.flip_data_bit(0, 0)  # lowest extended-mantissa bit
        after = fpu.to_double(fpu.read_st(0))
        assert after == before

    def test_high_bit_flip_changes_value(self):
        fpu = FPU()
        fpu.push(1.0)
        fpu.flip_data_bit(0, 79)  # sign bit of the 80-bit format
        assert fpu.to_double(fpu.read_st(0)) == -1.0

    def test_flip_validation(self):
        fpu = FPU()
        with pytest.raises(ValueError):
            fpu.flip_data_bit(0, 80)

    def test_to_double_narrowing(self):
        assert FPU.to_double(1.0) == 1.0
        assert math.isnan(FPU.to_double(math.nan))
