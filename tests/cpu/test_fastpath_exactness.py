"""Hooks and hang budgets fire at identical instants in both modes
(PR 8 satellite).

The injection scheduler (the paper's ptrace analogue) arms
``schedule_hook`` horizons, and the engine arms ``block_limit`` hang
budgets.  Both must trigger at the exact same ``clock.blocks`` and
``instructions_retired`` whether the VM interprets or runs translated
units - including horizons that land in the middle of a superblock
whose vector instructions each cost many blocks."""

import pytest

from repro.errors import HangDetected
from tests.conftest import build_image

# The loop body is one translation unit containing a cost-8 vector
# instruction (64 elements >> 3), so most absolute block counts land
# strictly inside a unit's cost span.
SUPERBLOCK = """
    movi eax, 0
    movi ecx, 64
    movi esi, $buf
loop:
    addi eax, 3
    xor eax, ecx
    vbin.add esi, esi, esi, ecx
    sub eax, ecx
    addi edx, 1
    cmpi edx, 40
    jl loop
    ret
"""


def fresh(fastpath):
    image, vm = build_image({"f": SUPERBLOCK}, bss={"buf": 1024})
    vm.fastpath = fastpath
    return vm


class TestHookExactness:
    @pytest.mark.parametrize(
        "at", [1, 2, 3, 7, 13, 50, 51, 52, 53, 54, 55, 100, 333]
    )
    def test_hook_instant_matches_interpreter(self, at):
        instants = []
        for fastpath in (False, True):
            vm = fresh(fastpath)
            fired = []
            vm.schedule_hook(
                at,
                lambda v: fired.append(
                    (v.clock.blocks, v.instructions_retired)
                ),
            )
            vm.call("f")
            instants.append((fired, vm.clock.blocks, vm.instructions_retired))
        assert instants[0] == instants[1]
        assert instants[0][0], "hook never fired"

    def test_many_hooks_in_one_run(self):
        horizons = [2, 5, 9, 17, 33, 65, 129, 250]
        instants = []
        for fastpath in (False, True):
            vm = fresh(fastpath)
            fired = []
            for h in horizons:
                vm.schedule_hook(
                    h,
                    lambda v, h=h: fired.append(
                        (h, v.clock.blocks, v.instructions_retired)
                    ),
                )
            vm.call("f")
            instants.append(fired)
        assert instants[0] == instants[1]
        assert len(instants[0]) == len(horizons)

    def test_hook_installed_by_hook_mid_run(self):
        # the injector arms a second horizon from inside the first
        instants = []
        for fastpath in (False, True):
            vm = fresh(fastpath)
            fired = []

            def second(v):
                fired.append(("second", v.clock.blocks))

            def first(v):
                fired.append(("first", v.clock.blocks))
                v.schedule_hook(v.clock.blocks + 21, second)

            vm.schedule_hook(13, first)
            vm.call("f")
            instants.append(fired)
        assert instants[0] == instants[1]
        assert [k for k, _ in instants[0]] == ["first", "second"]


class TestBudgetExactness:
    @pytest.mark.parametrize("limit", [1, 2, 7, 50, 51, 52, 100, 333])
    def test_hang_detected_at_identical_instant(self, limit):
        observed = []
        for fastpath in (False, True):
            vm = fresh(fastpath)
            vm.block_limit = limit
            with pytest.raises(HangDetected) as exc:
                vm.call("f")
            observed.append(
                (
                    exc.value.args,
                    vm.clock.blocks,
                    vm.instructions_retired,
                    vm.regs.capture_state(),
                )
            )
        assert observed[0] == observed[1]

    def test_budget_refusal_has_no_side_effects(self):
        # a unit whose cost would cross the horizon must leave no trace:
        # the next interpreted instruction is the one that fires the hook
        vm = fresh(True)
        seen = []
        vm.schedule_hook(
            51, lambda v: seen.append(v.regs.capture_state())
        )
        vm.call("f")
        vm2 = fresh(False)
        seen2 = []
        vm2.schedule_hook(
            51, lambda v: seen2.append(v.regs.capture_state())
        )
        vm2.call("f")
        assert seen == seen2
