"""VM edge cases: flag semantics, wraparound, register aliasing."""

import pytest

from repro.cpu.isa import Insn, Op, encode
from repro.cpu.registers import EAX, ECX
from repro.errors import SimSegfault
from tests.conftest import build_image


def run(source: str, args=()):
    image, vm = build_image({"main": source})
    return vm.call("main", args), vm


class TestFlagSemantics:
    @pytest.mark.parametrize(
        "a,b,taken",
        [(5, 5, True), (4, 5, False), (6, 5, False)],
    )
    def test_jz_after_cmp(self, a, b, taken):
        src = f"""
            movi eax, 0
            movi ecx, {a}
            movi edx, {b}
            cmp ecx, edx
            jz yes
            jmp done
        yes: movi eax, 1
        done: ret
        """
        assert run(src)[0] == int(taken)

    @pytest.mark.parametrize(
        "a,b,op,taken",
        [
            (-3, 5, "jl", True),
            (5, -3, "jl", False),
            (5, 5, "jge", True),
            (-1, 0, "jge", False),
            (6, 5, "jg", True),
            (5, 5, "jg", False),
            (5, 5, "jle", True),
            (7, 5, "jle", False),
        ],
    )
    def test_signed_comparisons(self, a, b, op, taken):
        src = f"""
            movi eax, 0
            movi ecx, {a}
            movi edx, {b}
            cmp ecx, edx
            {op} yes
            jmp done
        yes: movi eax, 1
        done: ret
        """
        assert run(src)[0] == int(taken)

    def test_arithmetic_sets_flags(self):
        src = """
            movi eax, 5
            movi ecx, 5
            sub eax, ecx
            jz good
            movi eax, 99
            ret
        good: movi eax, 1
            ret
        """
        assert run(src)[0] == 1


class TestWraparound:
    def test_add_wraps_32_bits(self):
        src = """
            movi eax, -1
            movi ecx, 2
            add eax, ecx
            ret
        """
        assert run(src)[0] == 1

    def test_imul_truncates(self):
        src = """
            movi eax, 0x10000
            mov ecx, eax
            imul eax, ecx
            ret
        """
        assert run(src)[0] == 0  # 2^32 truncated

    def test_shl_mask(self):
        assert run("movi eax, 1\nshl eax, 33\nret")[0] == 2  # shift & 31


class TestRegisterAliasing:
    def test_high_register_field_aliases(self):
        """Encoded register fields 8-15 alias 0-7 (a corrupted field
        still addresses real hardware)."""
        image, vm = build_image({"main": "movi eax, 5\nret"})
        # hand-encode 'mov r9, r0' -> behaves as 'mov ecx, eax'
        word = encode(Insn(Op.MOV, r1=9, r2=0))
        addr = image.addr_of("main")
        code = image.text.read_bytes(addr, 16)
        image.text.write_bytes(addr, word + code[8:16])
        # prepend: set eax first via args? simpler: run then inspect ecx
        vm.regs.poke(EAX, 123)
        vm.call("main")
        assert vm.regs.peek(ECX) == 123


class TestCallStack:
    def test_deep_recursion_faults_gracefully(self):
        image, vm = build_image({"main": "call @main\nret"})
        vm.block_limit = 100_000
        with pytest.raises(Exception) as err:
            vm.call("main")
        # stack exhaustion -> SIGSEGV (stack guard) before the budget
        assert isinstance(err.value, SimSegfault) or "budget" in str(err.value)

    def test_instructions_retired_counter(self):
        _, vm = run("nop\nnop\nret")
        assert vm.instructions_retired == 3
