"""Unit tests for the VM's vector instructions."""

import math

import numpy as np
import pytest

from repro.errors import SimSegfault
from tests.conftest import build_image


def vec_image(source: str, n: int = 16):
    image, vm = build_image(
        {"main": source}, data={"a": n * 8, "b": n * 8, "dst": n * 8, "out": 16}
    )
    a = image.data.view_f64(image.addr_of("a"), n)
    b = image.data.view_f64(image.addr_of("b"), n)
    a[:] = np.arange(1.0, n + 1)
    b[:] = 2.0
    return image, vm


class TestElementwise:
    @pytest.mark.parametrize(
        "op,expected",
        [
            ("add", lambda a, b: a + b),
            ("sub", lambda a, b: a - b),
            ("mul", lambda a, b: a * b),
            ("div", lambda a, b: a / b),
            ("min", np.minimum),
            ("max", np.maximum),
        ],
    )
    def test_vbin(self, op, expected):
        src = f"""
            movi esi, $a
            movi edi, $b
            movi ebx, $dst
            movi ecx, 16
            vbin.{op} ebx, esi, edi, ecx
            ret
        """
        image, vm = vec_image(src)
        vm.call("main")
        a = np.arange(1.0, 17)
        dst = image.data.view_f64(image.addr_of("dst"), 16)
        np.testing.assert_array_equal(dst, expected(a, np.full(16, 2.0)))

    def test_vbins_scalar_from_st0(self):
        src = """
            movi esi, $a
            movi ebx, $dst
            movi ecx, 16
            fldimm 3
            vbins.mul ebx, esi, ecx
            fpop
            ret
        """
        image, vm = vec_image(src)
        vm.call("main")
        dst = image.data.view_f64(image.addr_of("dst"), 16)
        np.testing.assert_array_equal(dst, np.arange(1.0, 17) * 3)

    def test_vaxpy(self):
        src = """
            movi esi, $a
            movi edi, $b
            movi ebx, $dst
            movi ecx, 16
            fldimm 10
            vaxpy ebx, esi, edi, ecx
            fpop
            ret
        """
        image, vm = vec_image(src)
        vm.call("main")
        dst = image.data.view_f64(image.addr_of("dst"), 16)
        np.testing.assert_array_equal(dst, np.arange(1.0, 17) + 20.0)

    def test_vmov_and_vfill(self):
        src = """
            movi esi, $a
            movi ebx, $dst
            movi ecx, 16
            vmov ebx, esi, ecx
            fldimm 9
            movi ecx, 4
            vfill ebx, ecx
            fpop
            ret
        """
        image, vm = vec_image(src)
        vm.call("main")
        dst = image.data.view_f64(image.addr_of("dst"), 16)
        np.testing.assert_array_equal(dst[:4], 9.0)
        np.testing.assert_array_equal(dst[4:], np.arange(5.0, 17))

    def test_in_place_alias_is_safe(self):
        src = """
            movi esi, $a
            movi ecx, 16
            vbin.add esi, esi, esi, ecx
            ret
        """
        image, vm = vec_image(src)
        vm.call("main")
        a = image.data.view_f64(image.addr_of("a"), 16)
        np.testing.assert_array_equal(a, np.arange(1.0, 17) * 2)


class TestReductions:
    def _run_red(self, insns: str):
        src = f"""
            movi esi, $a
            movi edi, $b
            movi ecx, 16
            {insns}
            movi ebx, $out
            fstp [ebx]
            ret
        """
        image, vm = vec_image(src)
        vm.call("main")
        return image.data.read_f64(image.addr_of("out"))

    def test_sum(self):
        assert self._run_red("vred.sum esi, ecx") == sum(range(1, 17))

    def test_dot(self):
        assert self._run_red("vred.dot esi, edi, ecx") == 2.0 * sum(range(1, 17))

    def test_min_max(self):
        assert self._run_red("vred.min esi, ecx") == 1.0
        assert self._run_red("vred.max esi, ecx") == 16.0

    def test_sumsq(self):
        assert self._run_red("vred.sumsq esi, ecx") == sum(i * i for i in range(1, 17))

    def test_nancount(self):
        image, vm = vec_image(
            """
            movi esi, $a
            movi ecx, 16
            vred.nancount esi, ecx
            movi ebx, $out
            fstp [ebx]
            ret
            """
        )
        a = image.data.view_f64(image.addr_of("a"), 16)
        a[3] = math.nan
        a[7] = math.inf
        vm.call("main")
        assert image.data.read_f64(image.addr_of("out")) == 2.0


class TestCorruptedOperands:
    def test_corrupted_length_out_of_segment_faults(self):
        src = """
            movi esi, $a
            movi ecx, 100000
            vred.sum esi, ecx
            ret
        """
        image, vm = vec_image(src)
        with pytest.raises(SimSegfault):
            vm.call("main")

    def test_corrupted_base_address_faults(self):
        src = """
            movi esi, 0x500
            movi ecx, 4
            vred.sum esi, ecx
            ret
        """
        image, vm = vec_image(src)
        with pytest.raises(SimSegfault):
            vm.call("main")

    def test_div_by_zero_vector_is_masked(self):
        src = """
            movi esi, $a
            movi edi, $b
            movi ebx, $dst
            movi ecx, 16
            vbin.div ebx, esi, edi, ecx
            ret
        """
        image, vm = vec_image(src)
        image.data.view_f64(image.addr_of("b"), 16)[0] = 0.0
        vm.call("main")  # must not raise: x87 masked semantics
        dst = image.data.view_f64(image.addr_of("dst"), 16)
        assert math.isinf(dst[0])
