"""Unit tests for the integer register file."""

import pytest

from repro.cpu.registers import EAX, ESP, REG_INDEX, REG_NAMES, RegisterFile


class TestAccess:
    def test_names_are_x86_order(self):
        assert REG_NAMES == ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")
        assert REG_INDEX["esp"] == ESP == 4

    def test_put_masks_32_bits(self):
        rf = RegisterFile()
        rf.put(EAX, 0x1_2345_6789)
        assert rf.get(EAX) == 0x2345_6789

    def test_signed_roundtrip(self):
        rf = RegisterFile()
        rf.put_signed(EAX, -5)
        assert rf.get_signed(EAX) == -5
        assert rf.get(EAX) == 0xFFFF_FFFB

    def test_access_counters(self):
        rf = RegisterFile()
        rf.put(EAX, 1)
        rf.get(EAX)
        rf.get(EAX)
        assert rf.write_count[EAX] == 1
        assert rf.read_count[EAX] == 2

    def test_peek_poke_uncounted(self):
        rf = RegisterFile()
        rf.poke(EAX, 9)
        assert rf.peek(EAX) == 9
        assert rf.read_count[EAX] == 0
        assert rf.write_count[EAX] == 0


class TestFlags:
    def test_set_flags(self):
        rf = RegisterFile()
        rf.set_flags(0)
        assert rf.zf and not rf.sf
        rf.set_flags(-3)
        assert not rf.zf and rf.sf
        rf.set_flags(7)
        assert not rf.zf and not rf.sf


class TestInjection:
    def test_flip_bit(self):
        rf = RegisterFile()
        rf.poke(EAX, 0)
        assert rf.flip_bit(EAX, 31) == 0x8000_0000
        assert rf.flip_bit(EAX, 31) == 0

    def test_flip_validation(self):
        rf = RegisterFile()
        with pytest.raises(ValueError):
            rf.flip_bit(8, 0)
        with pytest.raises(ValueError):
            rf.flip_bit(0, 32)


class TestLiveness:
    def test_live_registers(self):
        rf = RegisterFile()
        rf.put(EAX, 1)
        rf.get(EAX)
        rf.get(ESP)
        assert set(rf.live_registers()) == {"eax", "esp"}
        assert rf.live_registers(min_accesses=2) == []

    def test_snapshot(self):
        rf = RegisterFile()
        rf.poke(EAX, 0x42)
        assert rf.snapshot()["eax"] == 0x42
