"""Unit tests for the VM interpreter (scalar/control/FPU semantics)."""

import math

import pytest

from repro.cpu.registers import EAX, ECX
from repro.errors import (
    HangDetected,
    SimFPE,
    SimIllegalInstruction,
    SimSegfault,
)
from tests.conftest import build_image


def run(source: str, args=(), data=None, setup=None):
    image, vm = build_image({"main": source}, data=data)
    if setup:
        setup(image, vm)
    result = vm.call("main", args)
    return result, image, vm


class TestArithmetic:
    def test_add_sub(self):
        assert run("movi eax, 7\nmovi ecx, 5\nadd eax, ecx\nret")[0] == 12
        assert run("movi eax, 7\nmovi ecx, 5\nsub eax, ecx\nret")[0] == 2

    def test_sub_wraps_unsigned(self):
        r, _, _ = run("movi eax, 0\nmovi ecx, 1\nsub eax, ecx\nret")
        assert r == 0xFFFF_FFFF

    def test_imul(self):
        assert run("movi eax, -3\nmovi ecx, 4\nimul eax, ecx\nret")[0] == (-12) & 0xFFFFFFFF

    def test_idiv_truncates_toward_zero(self):
        assert run("movi eax, -7\nmovi ecx, 2\nidiv eax, ecx\nret")[0] == (-3) & 0xFFFFFFFF

    def test_idiv_by_zero_is_sigfpe(self):
        with pytest.raises(SimFPE):
            run("movi eax, 1\nmovi ecx, 0\nidiv eax, ecx\nret")

    def test_irem(self):
        assert run("movi eax, 7\nmovi ecx, 3\nirem eax, ecx\nret")[0] == 1

    def test_bitwise(self):
        assert run("movi eax, 12\nmovi ecx, 10\nand eax, ecx\nret")[0] == 8
        assert run("movi eax, 12\nmovi ecx, 10\nor eax, ecx\nret")[0] == 14
        assert run("movi eax, 12\nmovi ecx, 10\nxor eax, ecx\nret")[0] == 6

    def test_shifts(self):
        assert run("movi eax, 3\nshl eax, 4\nret")[0] == 48
        assert run("movi eax, 48\nshr eax, 4\nret")[0] == 3

    def test_neg(self):
        assert run("movi eax, 5\nneg eax\nret")[0] == (-5) & 0xFFFFFFFF

    def test_lea(self):
        assert run("movi ecx, 100\nlea eax, [ecx+28]\nret")[0] == 128


class TestControlFlow:
    def test_loop(self):
        src = """
            movi eax, 0
            movi ecx, 0
        lp: add eax, ecx
            addi ecx, 1
            cmpi ecx, 10
            jl lp
            ret
        """
        assert run(src)[0] == 45

    def test_conditional_branches(self):
        src = """
            movi eax, 0
            movi ecx, 5
            cmpi ecx, 5
            jz eq
            movi eax, 99
        eq: ret
        """
        assert run(src)[0] == 0

    def test_jg_jle(self):
        src = """
            movi eax, 1
            cmpi eax, 1
            jg wrong
            jle good
        wrong: movi eax, 99
        good: ret
        """
        assert run(src)[0] == 1

    def test_call_ret_nesting(self):
        image, vm = build_image(
            {
                "main": "call @a\naddi eax, 1\nret",
                "a": "call @b\naddi eax, 10\nret",
                "b": "movi eax, 100\nret",
            }
        )
        assert vm.call("main") == 111

    def test_callr_indirect(self):
        image, vm = build_image(
            {
                "main": "movi ecx, @leaf\ncallr ecx\naddi eax, 1\nret",
                "leaf": "movi eax, 4\nret",
            }
        )
        assert vm.call("main") == 5

    def test_jump_to_unmapped_faults(self):
        with pytest.raises(SimSegfault):
            run("movi eax, 0x200000\npush eax\nret")  # RET to unmapped

    def test_hlt_is_privileged(self):
        with pytest.raises(SimSegfault, match="privileged"):
            run("hlt")

    def test_block_budget_hang(self):
        image, vm = build_image({"main": "lp: jmp lp"})
        vm.block_limit = 100
        with pytest.raises(HangDetected):
            vm.call("main")


class TestStackOps:
    def test_push_pop(self):
        assert run("movi ecx, 42\npush ecx\npop eax\nret")[0] == 42

    def test_args_via_frame(self):
        src = """
            push ebp
            mov ebp, esp
            load eax, [ebp+8]
            load ecx, [ebp+12]
            add eax, ecx
            mov esp, ebp
            pop ebp
            ret
        """
        assert run(src, args=[30, 12])[0] == 42

    def test_stack_restored_after_call(self):
        image, vm = build_image({"main": "movi eax, 1\nret"})
        esp0 = image.stack.esp
        vm.call("main", [5, 6, 7])
        assert image.stack.esp == esp0


class TestFPU:
    def test_fld_fstp_roundtrip(self):
        def setup(image, vm):
            image.data.write_f64(image.addr_of("buf"), 2.5)

        src = """
            movi esi, $buf
            fld [esi]
            fld1
            faddp
            fstp [esi+8]
            ret
        """
        _, image, _ = run(src, data={"buf": 16}, setup=setup)
        assert image.data.read_f64(image.addr_of("buf") + 8) == 3.5

    def test_arith_chain(self):
        src = """
            movi esi, $buf
            fldimm 10
            fldimm 4
            fsubp       ; 6
            fldimm 3
            fmulp       ; 18
            fldimm 2
            fdivp       ; 9
            fsqrt       ; 3
            fchs        ; -3
            fabs        ; 3
            fstp [esi]
            ret
        """
        _, image, _ = run(src, data={"buf": 8})
        assert image.data.read_f64(image.addr_of("buf")) == 3.0

    def test_fdiv_by_zero_masked(self):
        src = """
            movi esi, $buf
            fld1
            fldz
            fdivp
            fstp [esi]
            ret
        """
        _, image, _ = run(src, data={"buf": 8})
        assert math.isinf(image.data.read_f64(image.addr_of("buf")))

    def test_fsqrt_negative_is_nan(self):
        src = """
            movi esi, $buf
            fld1
            fchs
            fsqrt
            fstp [esi]
            ret
        """
        _, image, _ = run(src, data={"buf": 8})
        assert math.isnan(image.data.read_f64(image.addr_of("buf")))

    def test_fcomip_sets_flags(self):
        # 5 > 3: FCOMIP clears both ZF and SF, so JLE falls through.
        src = """
            fldimm 3
            fldimm 5    ; ST0=5, ST1=3
            fcomip
            movi eax, 0
            jle done
            movi eax, 1
        done: ret
        """
        assert run(src)[0] == 1
        # 2 < 3: SF set, JLE taken.
        src_less = """
            fldimm 3
            fldimm 2    ; ST0=2, ST1=3
            fcomip
            movi eax, 0
            jle done
            movi eax, 1
        done: ret
        """
        assert run(src_less)[0] == 0

    def test_fdup_fpop(self):
        src = """
            movi esi, $buf
            fldimm 7
            fdup
            faddp       ; 14
            fstp [esi]
            ret
        """
        _, image, _ = run(src, data={"buf": 8})
        assert image.data.read_f64(image.addr_of("buf")) == 14.0


class TestFaults:
    def test_undefined_opcode_is_sigill(self):
        image, vm = build_image({"main": "nop\nret"})
        # Corrupt the NOP's opcode byte into an undefined value.
        addr = image.addr_of("main")
        image.text.write_u8(addr, 0xEE)
        with pytest.raises(SimIllegalInstruction):
            vm.call("main")

    def test_text_flip_invalidates_decode_cache(self):
        src = """
            movi eax, 1
            movi ecx, 0
        lp: addi ecx, 1
            cmpi ecx, 3
            jl lp
            ret
        """
        image, vm = build_image({"main": src})
        assert vm.call("main") == 1
        # Flip a bit of 'movi eax, 1' imm -> reruns must see new value.
        image.text.flip_bit(image.addr_of("main") + 4, 1)
        assert vm.call("main") == 3

    def test_load_unmapped_faults(self):
        with pytest.raises(SimSegfault):
            run("movi esi, 0x100\nload eax, [esi]\nret")


class TestHooks:
    def test_hook_fires_at_block(self):
        image, vm = build_image({"main": "movi ecx, 0\nlp: addi ecx, 1\ncmpi ecx, 100\njl lp\nret"})
        fired = []
        vm.schedule_hook(50, lambda v: fired.append(v.clock.blocks))
        vm.call("main")
        assert len(fired) == 1
        assert fired[0] >= 50

    def test_hooks_fire_in_order(self):
        image, vm = build_image({"main": "movi ecx, 0\nlp: addi ecx, 1\ncmpi ecx, 100\njl lp\nret"})
        order = []
        vm.schedule_hook(60, lambda v: order.append("b"))
        vm.schedule_hook(30, lambda v: order.append("a"))
        vm.call("main")
        assert order == ["a", "b"]
        assert vm.pending_hooks() == 0

    def test_register_flip_via_hook_changes_result(self):
        src = """
            movi eax, 0
            movi ecx, 0
        lp: add eax, ecx
            addi ecx, 1
            cmpi ecx, 50
            jl lp
            ret
        """
        image, vm = build_image({"main": src})
        vm.schedule_hook(20, lambda v: v.regs.flip_bit(EAX, 20))
        result = vm.call("main")
        assert result != sum(range(50))

    def test_vector_cost_advances_clock(self):
        image, vm = build_image(
            {"main": "movi esi, $buf\nmovi ecx, 256\nvred.sum esi, ecx\nfpop\nret"},
            data={"buf": 2048},
        )
        vm.call("main")
        # 5 scalar-ish instructions plus 256/8 = 32 blocks for the reduce
        assert image.clock.blocks >= 32
