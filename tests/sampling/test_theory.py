"""Sampling theory (section 4.3): the paper's numbers must come out."""

import math

import pytest

from repro.sampling.theory import (
    achieved_error,
    injection_space_size,
    proportion_ci,
    sample_size,
    sample_size_oversampled,
    stratified_error_rate,
    z_alpha,
)


class TestZAlpha:
    def test_95_percent(self):
        assert z_alpha(0.05) == pytest.approx(1.96, abs=0.005)

    def test_99_percent(self):
        assert z_alpha(0.01) == pytest.approx(2.576, abs=0.005)

    def test_validation(self):
        with pytest.raises(ValueError):
            z_alpha(0.0)
        with pytest.raises(ValueError):
            z_alpha(1.5)


class TestSampleSize:
    def test_paper_achieved_error_range(self):
        """400-500 injections at 95% -> d in 4.4-4.9 percent."""
        assert 0.0438 <= achieved_error(500) <= 0.044
        assert 0.0489 <= achieved_error(400) <= 0.0491

    def test_oversampling_maximizes(self):
        assert sample_size(0.05, p=0.5) >= sample_size(0.05, p=0.3)
        assert sample_size_oversampled(0.05) == sample_size(0.05, p=0.5)

    def test_inverse_relationship(self):
        n = sample_size_oversampled(0.044)
        assert achieved_error(n) <= 0.044

    def test_smaller_d_needs_more_samples(self):
        assert sample_size_oversampled(0.01) > sample_size_oversampled(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_size(0.0)
        with pytest.raises(ValueError):
            sample_size(0.05, p=1.5)
        with pytest.raises(ValueError):
            achieved_error(0)


class TestProportionCI:
    def test_basic(self):
        p, lo, hi = proportion_ci(50, 100)
        assert p == 0.5
        assert lo == pytest.approx(0.5 - 1.96 * math.sqrt(0.25 / 100), abs=1e-3)
        assert hi == pytest.approx(0.5 + 1.96 * math.sqrt(0.25 / 100), abs=1e-3)

    def test_clamped_to_unit_interval(self):
        _, lo, _ = proportion_ci(0, 10)
        _, _, hi = proportion_ci(10, 10)
        assert lo == 0.0 and hi == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_ci(5, 0)
        with pytest.raises(ValueError):
            proportion_ci(11, 10)


class TestInjectionSpace:
    def test_paper_example(self):
        """512 x 64 x 120 ~ 3.9e6 (the smallest-region space)."""
        assert injection_space_size(512, 64, 120) == 3_932_160

    def test_validation(self):
        with pytest.raises(ValueError):
            injection_space_size(0, 1, 1)


class TestStratifiedErrorRate:
    def test_known_zero_stratum_reduces_to_errors_over_n(self):
        # the --prune-masked identity: tallying pruned trials as CORRECT
        # is the stratified estimator with a known-zero pruned stratum
        assert stratified_error_rate(3, 10, 40) == pytest.approx(3 / 50)

    def test_nothing_pruned_is_the_plain_rate(self):
        assert stratified_error_rate(2, 8, 0) == pytest.approx(0.25)

    def test_everything_pruned(self):
        assert stratified_error_rate(0, 0, 25) == 0.0

    def test_nonzero_pruned_stratum_weighting(self):
        # 10 executed at 50%, 10 pruned at a (hypothetical) known 10%
        assert stratified_error_rate(5, 10, 10, pruned_rate=0.1) == (
            pytest.approx(0.3)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            stratified_error_rate(0, 0, 0)
        with pytest.raises(ValueError):
            stratified_error_rate(5, 4, 1)
        with pytest.raises(ValueError):
            stratified_error_rate(1, 4, 1, pruned_rate=1.5)
