"""Campaign plans."""

import pytest

from repro.sampling.plans import (
    DEFAULT_REGION_N,
    PAPER_REGIONS,
    CampaignPlan,
    default_plan,
)


class TestDefaultPlan:
    def test_covers_eight_regions(self):
        plan = default_plan()
        assert set(plan.per_region) == set(PAPER_REGIONS)
        assert len(PAPER_REGIONS) == 8

    def test_default_size(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAMPAIGN_N", raising=False)
        assert default_plan().n_for("heap") == DEFAULT_REGION_N

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_N", "500")
        assert default_plan().n_for("text") == 500

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_N", "500")
        assert default_plan(25).n_for("text") == 25

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            default_plan(0)

    def test_totals_and_d(self):
        plan = default_plan(100)
        assert plan.total_injections == 800
        assert 0.09 < plan.d_for("heap") < 0.11  # ~9.8% at n=100
