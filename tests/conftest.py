"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.assembler import Program
from repro.cpu.vm import VM
from repro.memory.process import ProcessImage
from repro.memory.symbols import Linker
from repro.mpi.simulator import JobConfig


def build_image(
    program_sources: dict[str, str] | None = None,
    *,
    data: dict[str, int] | None = None,
    bss: dict[str, int] | None = None,
    mpi_lib: bool = False,
    heap_size: int = 1 << 16,
    stack_size: int = 1 << 14,
    track: bool = False,
    rank: int = 0,
) -> tuple[ProcessImage, VM]:
    """Assemble, link and load a small test program."""
    prog = Program()
    for name, source in (program_sources or {}).items():
        prog.add(name, source)
    linker = Linker()
    prog.add_to_linker(linker)
    for name, size in (data or {}).items():
        linker.add_data(name, size)
    for name, size in (bss or {"scratchpad": 4096}).items():
        linker.add_bss(name, size)
    if not prog.functions:
        linker.add_text("empty", b"\x01" * 64)
    if mpi_lib:
        from repro.mpi.library import add_mpi_library

        add_mpi_library(linker, text_scale=0.1, data_scale=0.1)
    image = ProcessImage.from_linker(
        linker, rank=rank, heap_size=heap_size, stack_size=stack_size, track=track
    )
    prog.relocate(image)
    return image, VM(image)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


# ----------------------------------------------------------------------
# small application configurations (fast enough for unit tests)
# ----------------------------------------------------------------------
SMALL_NPROCS = 4

SMALL_WAVETOY = dict(nx=32, ny=8, steps=6, cold_heap_factor=3, output_stride=1)
SMALL_MOLDYN = dict(atoms_per_rank=64, boundary=16, steps=5, cold_heap_factor=3)
SMALL_CLIMATE = dict(nlon=32, nlat_local=2, steps=6, gather_every=3)


@pytest.fixture
def small_config():
    return JobConfig(nprocs=SMALL_NPROCS)


def small_wavetoy():
    from repro.apps import WavetoyApp

    return WavetoyApp(**SMALL_WAVETOY)


def small_moldyn(**overrides):
    from repro.apps import MoldynApp

    return MoldynApp(**{**SMALL_MOLDYN, **overrides})


def small_climate(**overrides):
    from repro.apps import ClimateApp

    return ClimateApp(**{**SMALL_CLIMATE, **overrides})
