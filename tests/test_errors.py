"""The simulated fault-condition hierarchy."""

import pytest

from repro.errors import (
    AppAbort,
    HangDetected,
    InvalidFaultSpec,
    MPIAbort,
    MPIError,
    SimBusError,
    SimFPE,
    SimIllegalInstruction,
    SimSegfault,
    SimSignal,
    SimulationError,
)


class TestHierarchy:
    def test_all_are_simulation_errors(self):
        for exc in (
            SimSegfault, SimBusError, SimIllegalInstruction, SimFPE,
            MPIError, MPIAbort, AppAbort, HangDetected, InvalidFaultSpec,
        ):
            assert issubclass(exc, SimulationError)

    def test_signals_have_signames(self):
        assert SimSegfault().signame == "SIGSEGV"
        assert SimBusError().signame == "SIGBUS"
        assert SimIllegalInstruction().signame == "SIGILL"
        assert SimFPE().signame == "SIGFPE"
        assert issubclass(SimSegfault, SimSignal)

    def test_signal_carries_rank(self):
        err = SimSegfault("bad address", rank=3)
        assert err.rank == 3
        assert "bad address" in str(err)

    def test_mpi_error_class(self):
        err = MPIError("MPI_ERR_RANK", "rank 99", rank=1)
        assert err.mpi_class == "MPI_ERR_RANK"
        assert "MPI_ERR_RANK" in str(err)

    def test_mpi_abort_exit_code(self):
        assert MPIAbort("bye", exit_code=7).exit_code == 7
        assert MPIAbort().exit_code == 1

    def test_app_abort_check_name(self):
        err = AppAbort("NaN check", "energy is nan")
        assert err.check == "NaN check"
        assert "energy is nan" in str(err)
        assert str(AppAbort("bare")) == "bare"

    def test_hang_detected_blocks(self):
        err = HangDetected("budget exceeded", blocks=1234)
        assert err.blocks == 1234
        assert err.reason == "budget exceeded"
