"""Application profiling (Table 1 machinery)."""

import pytest

from repro.mpi.simulator import JobConfig
from repro.trace.profiles import ApplicationProfile, profile_application
from repro.trace.working_set import trace_memory
from tests.conftest import SMALL_NPROCS, small_wavetoy


@pytest.fixture(scope="module")
def wavetoy_profile():
    # Default-size wavetoy: the SMALL test config shrinks the heap below
    # the static tables, which would hide the Cactus-like profile shape.
    from repro.apps import WavetoyApp

    return profile_application(WavetoyApp(), JobConfig(nprocs=SMALL_NPROCS))


class TestProfile:
    def test_sections_positive(self, wavetoy_profile):
        p = wavetoy_profile
        assert p.text_size > 0
        assert p.data_size > 0
        assert p.bss_size > 0
        assert p.heap_size_max > 0

    def test_wavetoy_heap_dominates(self, wavetoy_profile):
        """Cactus's profile: the heap is the largest data region."""
        p = wavetoy_profile
        assert p.heap_size_max > p.data_size
        assert p.heap_size_max > p.bss_size

    def test_distribution_sums_to_100(self, wavetoy_profile):
        p = wavetoy_profile
        assert p.header_percent + p.user_percent == pytest.approx(100.0)

    def test_wavetoy_mostly_user_data(self, wavetoy_profile):
        assert p_user(wavetoy_profile) > 80.0

    def test_rows_render(self, wavetoy_profile):
        rows = dict(wavetoy_profile.as_rows())
        assert "Text Size (MB)" in rows
        assert "Header %" in rows


def p_user(profile):
    return profile.user_percent


def make_profile(**over):
    fields = dict(
        app_name="toy",
        nprocs=4,
        text_size=2 << 20,
        data_size=1 << 20,
        bss_size=512 << 10,
        heap_size_min=4 << 20,
        heap_size_max=4 << 20,
        stack_size_min=8 << 10,
        stack_size_max=16 << 10,
        message_bytes_min=1 << 20,
        message_bytes_max=3 << 20,
        header_percent=7.0,
        user_percent=93.0,
        control_message_percent=12.0,
    )
    fields.update(over)
    return ApplicationProfile(**fields)


class TestAsRowsBranches:
    def test_identical_extents_render_single_value(self):
        rows = dict(make_profile().as_rows())
        assert rows["Heap Size (MB)"] == "4"

    def test_near_identical_extents_collapse(self):
        # spread under 1 KiB: noise, not a real per-rank range
        rows = dict(
            make_profile(heap_size_min=(4 << 20) - 512).as_rows()
        )
        assert "-" not in rows["Heap Size (MB)"]

    def test_wide_extents_render_range(self):
        rows = dict(make_profile().as_rows())
        assert rows["Message (MB)"] == "1-3"

    def test_stack_reported_in_kb(self):
        rows = dict(make_profile().as_rows())
        assert rows["Stack Size (KB)"] == "16"

    def test_percent_rows_rounded(self):
        rows = dict(
            make_profile(header_percent=6.6, user_percent=93.4).as_rows()
        )
        assert rows["Header %"] == "7"
        assert rows["User %"] == "93"


class TestTraceMemory:
    def test_report_shapes(self):
        report = trace_memory(small_wavetoy(), JobConfig(nprocs=SMALL_NPROCS))
        assert report.total_blocks > 0
        for which in ("text", "data", "bss", "heap", "data_bss_heap"):
            curve = getattr(report, which)
            assert curve.is_nonincreasing(), which
            assert 0 <= curve.percent[0] <= 100

    def test_phase_behaviour(self):
        """Init phase touches more than the compute phase (the paper's
        phase-shift observation)."""
        report = trace_memory(small_wavetoy(), JobConfig(nprocs=SMALL_NPROCS))
        assert report.initial_percent("text") > report.compute_phase_percent("text")
        assert (
            report.initial_percent("data_bss_heap")
            >= report.compute_phase_percent("data_bss_heap")
        )

    def test_text_working_set_small_in_compute_phase(self):
        report = trace_memory(small_wavetoy(), JobConfig(nprocs=SMALL_NPROCS))
        assert report.compute_phase_percent("text") < 50.0
