"""Application profiling (Table 1 machinery)."""

import pytest

from repro.mpi.simulator import JobConfig
from repro.trace.profiles import profile_application
from repro.trace.working_set import trace_memory
from tests.conftest import SMALL_NPROCS, small_wavetoy


@pytest.fixture(scope="module")
def wavetoy_profile():
    # Default-size wavetoy: the SMALL test config shrinks the heap below
    # the static tables, which would hide the Cactus-like profile shape.
    from repro.apps import WavetoyApp

    return profile_application(WavetoyApp(), JobConfig(nprocs=SMALL_NPROCS))


class TestProfile:
    def test_sections_positive(self, wavetoy_profile):
        p = wavetoy_profile
        assert p.text_size > 0
        assert p.data_size > 0
        assert p.bss_size > 0
        assert p.heap_size_max > 0

    def test_wavetoy_heap_dominates(self, wavetoy_profile):
        """Cactus's profile: the heap is the largest data region."""
        p = wavetoy_profile
        assert p.heap_size_max > p.data_size
        assert p.heap_size_max > p.bss_size

    def test_distribution_sums_to_100(self, wavetoy_profile):
        p = wavetoy_profile
        assert p.header_percent + p.user_percent == pytest.approx(100.0)

    def test_wavetoy_mostly_user_data(self, wavetoy_profile):
        assert p_user(wavetoy_profile) > 80.0

    def test_rows_render(self, wavetoy_profile):
        rows = dict(wavetoy_profile.as_rows())
        assert "Text Size (MB)" in rows
        assert "Header %" in rows


def p_user(profile):
    return profile.user_percent


class TestTraceMemory:
    def test_report_shapes(self):
        report = trace_memory(small_wavetoy(), JobConfig(nprocs=SMALL_NPROCS))
        assert report.total_blocks > 0
        for which in ("text", "data", "bss", "heap", "data_bss_heap"):
            curve = getattr(report, which)
            assert curve.is_nonincreasing(), which
            assert 0 <= curve.percent[0] <= 100

    def test_phase_behaviour(self):
        """Init phase touches more than the compute phase (the paper's
        phase-shift observation)."""
        report = trace_memory(small_wavetoy(), JobConfig(nprocs=SMALL_NPROCS))
        assert report.initial_percent("text") > report.compute_phase_percent("text")
        assert (
            report.initial_percent("data_bss_heap")
            >= report.compute_phase_percent("data_bss_heap")
        )

    def test_text_working_set_small_in_compute_phase(self):
        report = trace_memory(small_wavetoy(), JobConfig(nprocs=SMALL_NPROCS))
        assert report.compute_phase_percent("text") < 50.0
