"""Access-pattern utilities."""

import numpy as np
import pytest

from repro.trace.accesses import (
    access_histogram,
    liveness_summary,
    never_accessed_bytes,
    overwritten_after_read_fraction,
    touched_fraction,
)
from tests.conftest import build_image

HOT_COLD = """
    movi esi, $hot
    movi ecx, 16
    vred.sum esi, ecx
    fpop
    movi esi, $hot
    fld [esi]
    fstp [esi+8]
    ret
"""


@pytest.fixture
def traced():
    image, vm = build_image(
        {"main": HOT_COLD}, data={"hot": 128, "cold": 4096}, track=True
    )
    vm.call("main")
    return image


class TestFractions:
    def test_touched_fraction_reflects_hot_slice(self, traced):
        frac = touched_fraction(traced.data, "load")
        # only the 128-byte hot table of ~4.2KB was loaded
        assert 0.0 < frac < 0.2

    def test_exec_fraction_of_text(self, traced):
        assert touched_fraction(traced.text, "exec") > 0.0

    def test_never_accessed_bytes(self, traced):
        cold = never_accessed_bytes(traced.data, "load")
        assert cold >= 4096 - 256

    def test_untracked_segment_rejected(self):
        image, _ = build_image({"main": "ret"})
        with pytest.raises(ValueError, match="track=True"):
            touched_fraction(image.data)

    def test_bad_kind_rejected(self, traced):
        with pytest.raises(ValueError, match="kind"):
            touched_fraction(traced.data, "write")


class TestHistogram:
    def test_hot_bins_at_start(self, traced):
        hist = access_histogram(traced.data, "load", bins=8)
        assert hist[0] > 0.0
        assert hist[-1] == 0.0
        assert len(hist) == 8

    def test_bins_validated(self, traced):
        with pytest.raises(ValueError):
            access_histogram(traced.data, bins=0)


class TestOverwriteMasking:
    def test_store_after_load_counted(self, traced):
        # 'hot' granule 0: loaded (vred + fld) then stored (fstp at +8,
        # same granule) -> last event is a store.
        frac = overwritten_after_read_fraction(traced.data)
        assert frac > 0.0

    def test_summary_keys(self, traced):
        s = liveness_summary(traced.data)
        assert set(s) == {
            "name", "size", "loaded_fraction", "stored_fraction",
            "cold_bytes", "overwrite_masked_fraction",
        }
        assert s["name"] == "data"
