"""Working-set analysis (Tables 5-7 machinery)."""

import numpy as np
import pytest

from repro.memory.layout import GRANULE
from repro.trace.working_set import (
    WorkingSetCurve,
    combined_curve,
    section_curve,
    working_set_sizes,
)
from tests.conftest import build_image


class TestWssMath:
    def test_definition(self):
        # granules last accessed at blocks 10, 20, 30; one never (-1).
        last = np.array([10, 20, 30, -1], dtype=np.int64)
        times = np.array([0, 15, 25, 31])
        np.testing.assert_array_equal(working_set_sizes(last, times), [3, 2, 1, 0])

    def test_nonincreasing_property(self):
        rng = np.random.default_rng(0)
        last = rng.integers(-1, 1000, size=500)
        times = np.arange(0, 1001, 37)
        sizes = working_set_sizes(last, times)
        assert np.all(np.diff(sizes) <= 0)

    def test_time_zero_counts_everything_accessed(self):
        last = np.array([0, 5, -1, 7], dtype=np.int64)
        assert working_set_sizes(last, np.array([0]))[0] == 3


class TestSectionCurves:
    def _traced_image(self):
        src = """
            movi esi, $hot
            movi ecx, 8
            movi eax, 0
        lp: vred.sum esi, ecx
            fpop
            addi eax, 1
            cmpi eax, 10
            jl lp
            ret
        """
        image, vm = build_image(
            {"main": src}, data={"hot": 64, "cold": 4096}, track=True
        )
        vm.call("main")
        return image

    def test_exec_curve_for_text(self):
        image = self._traced_image()
        curve = section_curve(
            image.text, kind="exec", total_blocks=image.clock.blocks
        )
        assert curve.percent[0] > 0
        assert curve.is_nonincreasing()

    def test_data_curve_excludes_cold(self):
        image = self._traced_image()
        curve = section_curve(
            image.data, kind="load", total_blocks=image.clock.blocks,
            section_bytes=64 + 4096,
        )
        # only the 64-byte hot table was loaded: about 64/(4160) ~ 1.5-3%
        assert 0 < curve.percent[0] < 10

    def test_untracked_segment_rejected(self):
        image, vm = build_image({"main": "ret"})
        with pytest.raises(ValueError, match="track=True"):
            section_curve(image.text, kind="exec", total_blocks=10)

    def test_combined_curve(self):
        image = self._traced_image()
        curve = combined_curve(
            [image.data, image.bss, image.heap_segment],
            kind="load",
            total_blocks=image.clock.blocks,
        )
        assert curve.name == "combined"
        assert curve.section_bytes == (
            image.data.size + image.bss.size + image.heap_segment.size
        )
        assert curve.is_nonincreasing()

    def test_at_lookup(self):
        image = self._traced_image()
        curve = section_curve(
            image.text, kind="exec", total_blocks=image.clock.blocks
        )
        assert curve.at(0) == pytest.approx(float(curve.percent[0]))


class TestEdgeCases:
    def test_empty_trace_is_all_zero(self):
        # tracked but never accessed: every granule keeps last = -1
        last = np.full(16, -1, dtype=np.int64)
        times = np.array([0, 5, 10])
        np.testing.assert_array_equal(working_set_sizes(last, times), [0, 0, 0])

    def test_no_granules_at_all(self):
        sizes = working_set_sizes(np.empty(0, dtype=np.int64), np.array([0, 1]))
        np.testing.assert_array_equal(sizes, [0, 0])

    def test_combined_curve_over_no_segments(self):
        curve = combined_curve([], kind="load", total_blocks=10)
        assert curve.section_bytes == 0
        assert np.all(curve.sizes_bytes == 0)
        np.testing.assert_array_equal(curve.percent, 0.0)
        assert curve.is_nonincreasing()

    def test_single_basic_block_run(self):
        # a ret-only program retires exactly one basic block; the time
        # axis must still span a non-degenerate [0, 1] window
        image, vm = build_image({"main": "ret"}, track=True)
        vm.call("main")
        assert image.clock.blocks <= 1
        curve = section_curve(
            image.text, kind="exec", total_blocks=image.clock.blocks
        )
        assert curve.times[0] == 0
        assert curve.times[-1] == 1
        assert curve.percent[0] > 0
        assert curve.is_nonincreasing()

    def test_overlapping_and_unsorted_query_windows(self):
        # duplicate and out-of-order query times: WSS(t) is a pure
        # function of t, so repeats must agree and order must not matter
        last = np.array([3, 7, 7, 12], dtype=np.int64)
        times = np.array([7, 0, 7, 13, 4])
        np.testing.assert_array_equal(
            working_set_sizes(last, times), [3, 4, 3, 0, 3]
        )

    def test_zero_sized_section_percent(self):
        curve = WorkingSetCurve(
            name="empty",
            times=np.array([0, 1], dtype=np.int64),
            sizes_bytes=np.array([0, 0], dtype=np.int64),
            section_bytes=0,
        )
        np.testing.assert_array_equal(curve.percent, [0.0, 0.0])
        assert curve.at(0) == 0.0
