"""Numerical validation of every application kernel against NumPy
references - the kernels are the computation under test, so their
fault-free semantics must be exactly right."""

import numpy as np
import pytest

from repro.cpu.assembler import Program
from repro.cpu.vm import VM
from repro.memory.process import ProcessImage
from repro.memory.symbols import Linker


def build(sources: dict, data: dict, data_init: dict | None = None):
    prog = Program()
    for name, src in sources.items():
        prog.add(name, src)
    linker = Linker()
    prog.add_to_linker(linker)
    for name, size in data.items():
        linker.add_data(name, size)
    image = ProcessImage.from_linker(linker, heap_size=1 << 18)
    prog.relocate(image)
    for name, values in (data_init or {}).items():
        image.data.view_f64(image.addr_of(name), len(values))[:] = values
    return image, VM(image)


class TestWavetoyStep:
    def test_leapfrog_matches_numpy(self):
        from repro.apps.wavetoy import kernels

        nx, rows = 16, 3
        total = rows + 2
        rng = np.random.default_rng(0)
        u_prev = rng.standard_normal((total, nx))
        u_curr = rng.standard_normal((total, nx))
        r2c, damping = 0.2, 0.1
        sponge = 1.0 - 0.02 * rng.random(nx)
        source = 1e-6 * rng.standard_normal(nx)
        srcamp = 0.05

        image, vm = build(
            {"wt_step": kernels.step_source(nx)},
            {
                "wt_r2c": 8, "wt_damp": 8, "wt_srcamp": 8,
                "wt_sponge": nx * 8, "wt_source": nx * 8,
            },
            {"wt_sponge": sponge, "wt_source": source},
        )
        image.data.write_f64(image.addr_of("wt_r2c"), r2c)
        image.data.write_f64(image.addr_of("wt_damp"), 1.0 - damping)
        image.data.write_f64(image.addr_of("wt_srcamp"), srcamp)
        heap = image.heap
        up = heap.malloc(total * nx * 8)
        uc = heap.malloc(total * nx * 8)
        un = heap.malloc(total * nx * 8)
        sc = heap.malloc((nx - 2) * 8)
        image.heap_segment.view_f64(up, total * nx)[:] = u_prev.reshape(-1)
        image.heap_segment.view_f64(uc, total * nx)[:] = u_curr.reshape(-1)

        vm.call("wt_step", [up, uc, un, rows, sc, 1])

        # NumPy reference
        expected = np.zeros_like(u_curr)
        lap = (
            u_curr[:-2, 1:-1] + u_curr[2:, 1:-1]
            + u_curr[1:-1, :-2] + u_curr[1:-1, 2:]
            - 4 * u_curr[1:-1, 1:-1]
        )
        expected[1:-1, 1:-1] = (
            2 * u_curr[1:-1, 1:-1] - u_prev[1:-1, 1:-1] + r2c * lap
        ) * (1.0 - damping)
        expected[1, 1:-1] = expected[1, 1:-1] * sponge[1:-1] + srcamp * source[1:-1]
        got = np.array(image.heap_segment.view_f64(un, total * nx)).reshape(
            total, nx
        )
        np.testing.assert_allclose(got[1:-1, 1:-1], expected[1:-1, 1:-1],
                                   rtol=1e-12)


class TestMoldynKernels:
    def _setup(self, n=100):
        from repro.apps.moldyn import kernels

        rng = np.random.default_rng(1)
        image, vm = build(
            {
                "md_force": kernels.force_source(),
                "md_integrate": kernels.integrate_source(),
                "md_thermostat": kernels.thermostat_source(),
                "md_blend": kernels.blend_source(),
                "md_energies": kernels.energies_source(),
            },
            {"md_k": 8, "md_dt": 8, "md_halfk": 8, "md_minv": n * 8},
        )
        return image, vm, rng

    def test_force_matches_numpy(self):
        n = 100
        image, vm, rng = self._setup(n)
        k = 1.7
        image.data.write_f64(image.addr_of("md_k"), k)
        x = rng.standard_normal(n + 2)
        xa = image.heap.malloc((n + 2) * 8)
        fa = image.heap.malloc((n + 2) * 8)
        image.heap_segment.view_f64(xa, n + 2)[:] = x
        vm.call("md_force", [xa, fa, n])
        expected = k * (x[2:] - 2 * x[1:-1] + x[:-2])
        got = np.array(image.heap_segment.view_f64(fa + 8, n))
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_integrate_matches_numpy(self):
        n = 70  # crosses chunk boundaries (32, 64)
        image, vm, rng = self._setup(n)
        dt = 0.05
        image.data.write_f64(image.addr_of("md_dt"), dt)
        minv = 1.0 / (1.0 + 0.1 * rng.random(n))
        image.data.view_f64(image.addr_of("md_minv"), n)[:] = minv
        x = rng.standard_normal(n)
        v = rng.standard_normal(n)
        f = rng.standard_normal(n)
        xa, va, fa, sc = (image.heap.malloc(n * 8) for _ in range(4))
        image.heap_segment.view_f64(xa, n)[:] = x
        image.heap_segment.view_f64(va, n)[:] = v
        image.heap_segment.view_f64(fa, n)[:] = f
        vm.call("md_integrate", [xa, va, fa, n, image.addr_of("md_minv"), sc])
        v_new = v + dt * f * minv
        x_new = x + dt * v_new
        np.testing.assert_allclose(
            np.array(image.heap_segment.view_f64(va, n)), v_new, rtol=1e-12
        )
        np.testing.assert_allclose(
            np.array(image.heap_segment.view_f64(xa, n)), x_new, rtol=1e-12
        )

    def test_energies_match_numpy(self):
        n = 50
        image, vm, rng = self._setup(n)
        k = 2.5
        image.data.write_f64(image.addr_of("md_halfk"), 0.5 * k)
        x = np.sort(rng.standard_normal(n))
        v = rng.standard_normal(n)
        xa, va = image.heap.malloc(n * 8), image.heap.malloc(n * 8)
        sc, out = image.heap.malloc(n * 8), image.heap.malloc(16)
        image.heap_segment.view_f64(xa, n)[:] = x
        image.heap_segment.view_f64(va, n)[:] = v
        vm.call("md_energies", [xa, va, n, sc, out])
        ke = image.heap_segment.read_f64(out)
        pe = image.heap_segment.read_f64(out + 8)
        assert ke == pytest.approx(0.5 * np.sum(v**2), rel=1e-12)
        assert pe == pytest.approx(0.5 * k * np.sum(np.diff(x) ** 2), rel=1e-12)

    def test_blend_matches_numpy(self):
        n = 40
        image, vm, rng = self._setup(n)
        a = rng.standard_normal(n)
        b = rng.standard_normal(n)
        aa, ba = image.heap.malloc(n * 8), image.heap.malloc(n * 8)
        image.heap_segment.view_f64(aa, n)[:] = a
        image.heap_segment.view_f64(ba, n)[:] = b
        vm.call("md_blend", [aa, ba, n])
        np.testing.assert_allclose(
            np.array(image.heap_segment.view_f64(aa, n)), (a + b) / 2, rtol=1e-12
        )

    def test_thermostat_matches_numpy(self):
        n = 30
        image, vm, rng = self._setup(n)
        v = rng.standard_normal(n)
        prof = 1.0 - 0.001 * rng.random(n)
        va, pa = image.heap.malloc(n * 8), image.heap.malloc(n * 8)
        image.heap_segment.view_f64(va, n)[:] = v
        image.heap_segment.view_f64(pa, n)[:] = prof
        vm.call("md_thermostat", [va, pa, n])
        np.testing.assert_allclose(
            np.array(image.heap_segment.view_f64(va, n)), v * prof, rtol=1e-12
        )


class TestClimateKernels:
    def _setup(self):
        from repro.apps.climate import kernels

        return build(
            {
                "cam_dynamics": kernels.dynamics_source(),
                "cam_physics": kernels.physics_source(),
                "cam_diag": kernels.diag_source(),
            },
            {
                "cam_negc": 8, "cam_dt": 8, "cam_negalpha": 8,
                "cam_solar": 8, "cam_evap": 8, "cam_negprecip": 8,
            },
        )

    def test_dynamics_matches_numpy(self):
        image, vm = self._setup()
        rng = np.random.default_rng(5)
        nrows, nlon = 3, 24
        c = 0.3
        image.data.write_f64(image.addr_of("cam_negc"), -c)
        t = rng.standard_normal((nrows, nlon))
        ta = image.heap.malloc(nrows * nlon * 8)
        sc = image.heap.malloc(nlon * 8)
        image.heap_segment.view_f64(ta, nrows * nlon)[:] = t.reshape(-1)
        vm.call("cam_dynamics", [ta, nrows, nlon, sc])
        expected = t.copy()
        expected[:, 1:] = t[:, 1:] - c * (t[:, 1:] - t[:, :-1])
        got = np.array(
            image.heap_segment.view_f64(ta, nrows * nlon)
        ).reshape(nrows, nlon)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_physics_matches_numpy(self):
        image, vm = self._setup()
        rng = np.random.default_rng(6)
        nrows, nlon = 2, 16
        dt, alpha, solar, evap, precip = 0.1, 0.05, 1.2, 0.02, 0.1
        for name, val in (
            ("cam_dt", dt), ("cam_negalpha", -alpha), ("cam_solar", solar),
            ("cam_evap", evap), ("cam_negprecip", -precip),
        ):
            image.data.write_f64(image.addr_of(name), val)
        t = 280 + rng.standard_normal((nrows, nlon))
        q = 0.3 + 0.01 * rng.standard_normal((nrows, nlon))
        s = 1.0 + 0.1 * rng.standard_normal((nrows, nlon))
        ta, qa, sa = (image.heap.malloc(nrows * nlon * 8) for _ in range(3))
        sc = image.heap.malloc(nlon * 8)
        image.heap_segment.view_f64(ta, nrows * nlon)[:] = t.reshape(-1)
        image.heap_segment.view_f64(qa, nrows * nlon)[:] = q.reshape(-1)
        image.heap_segment.view_f64(sa, nrows * nlon)[:] = s.reshape(-1)
        vm.call("cam_physics", [ta, qa, sa, nrows, nlon, sc])
        t_new = t + dt * (solar * s - alpha * t)
        q_new = q + dt * (evap - precip * q)
        np.testing.assert_allclose(
            np.array(image.heap_segment.view_f64(ta, nrows * nlon)).reshape(
                nrows, nlon
            ),
            t_new, rtol=1e-12,
        )
        np.testing.assert_allclose(
            np.array(image.heap_segment.view_f64(qa, nrows * nlon)).reshape(
                nrows, nlon
            ),
            q_new, rtol=1e-12,
        )

    def test_diag_matches_numpy(self):
        image, vm = self._setup()
        rng = np.random.default_rng(7)
        n = 32
        t = rng.standard_normal(n)
        q = rng.random(n)
        ta, qa = image.heap.malloc(n * 8), image.heap.malloc(n * 8)
        out = image.heap.malloc(16)
        image.heap_segment.view_f64(ta, n)[:] = t
        image.heap_segment.view_f64(qa, n)[:] = q
        vm.call("cam_diag", [ta, qa, n, out])
        assert image.heap_segment.read_f64(out) == pytest.approx(t.sum(), rel=1e-12)
        assert image.heap_segment.read_f64(out + 8) == pytest.approx(q.min())
