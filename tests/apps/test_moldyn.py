"""Molecular-dynamics application behaviour."""

import numpy as np
import pytest

from repro.apps import MoldynApp
from repro.mpi.simulator import Job, JobConfig, JobStatus
from tests.conftest import SMALL_MOLDYN, SMALL_NPROCS


@pytest.fixture(scope="module")
def run():
    job = Job(MoldynApp(**SMALL_MOLDYN), JobConfig(nprocs=SMALL_NPROCS))
    result = job.run()
    return result, job


def energies(result):
    lines = result.outputs["moldyn.log"].strip().splitlines()
    return [
        tuple(float(x) for x in line.split()[2:5]) for line in lines
    ]  # (KE, PE, TOTAL)


class TestExecution:
    def test_completes(self, run):
        result, _ = run
        assert result.status is JobStatus.COMPLETED

    def test_energy_log_per_step(self, run):
        result, _ = run
        log = result.outputs["moldyn.log"]
        assert log.count("ENERGY:") == SMALL_MOLDYN["steps"]

    def test_console_mirrors_log(self, run):
        result, _ = run
        assert any("ENERGY:" in line for line in result.stdout)

    def test_energies_finite_and_positive(self, run):
        result, _ = run
        for ke, pe, tot in energies(result):
            assert np.isfinite(tot)
            assert ke >= 0.0

    def test_energy_roughly_conserved(self, run):
        """Symplectic integration: total energy drift stays bounded."""
        result, _ = run
        totals = [t for _, _, t in energies(result)]
        assert max(totals) - min(totals) < 0.5 * (abs(totals[0]) + 1.0)

    def test_deterministic_given_seed(self):
        cfg = JobConfig(nprocs=SMALL_NPROCS, seed=77)
        r1 = Job(MoldynApp(**SMALL_MOLDYN), cfg).run()
        r2 = Job(MoldynApp(**SMALL_MOLDYN), cfg).run()
        assert r1.outputs == r2.outputs

    def test_checksums_add_overhead(self):
        cfg = JobConfig(nprocs=SMALL_NPROCS)
        with_ck = Job(MoldynApp(**SMALL_MOLDYN), cfg).run()
        without = Job(
            MoldynApp(**{**SMALL_MOLDYN, "checksums": False}), cfg
        ).run()
        assert without.status is JobStatus.COMPLETED
        assert max(with_ck.blocks_per_rank) > max(without.blocks_per_rank)

    def test_checksum_overhead_is_small(self):
        """NAMD's checks cost ~3%; ours must stay the same order."""
        cfg = JobConfig(nprocs=SMALL_NPROCS)
        with_ck = max(Job(MoldynApp(**SMALL_MOLDYN), cfg).run().blocks_per_rank)
        without = max(
            Job(MoldynApp(**{**SMALL_MOLDYN, "checksums": False}), cfg)
            .run()
            .blocks_per_rank
        )
        overhead = (with_ck - without) / without
        assert 0.0 < overhead < 0.15

    def test_heap_dominant_profile(self):
        # Default sizes: the SMALL test config shrinks the atom arrays
        # below the static parameter tables.
        job = Job(MoldynApp(), JobConfig(nprocs=SMALL_NPROCS))
        result = job.run()
        assert result.status is JobStatus.COMPLETED
        sizes = job.images[0].section_sizes()
        assert job.images[0].heap.high_water > sizes["data"]


class TestValidation:
    def test_boundary_vs_atoms(self):
        with pytest.raises(ValueError, match="boundary"):
            Job(
                MoldynApp(atoms_per_rank=16, boundary=16),
                JobConfig(nprocs=2),
            )

    def test_unknown_param(self):
        with pytest.raises(ValueError):
            MoldynApp(cutoff=12.0)


class TestDetection:
    def test_corrupted_coordinate_message_detected(self):
        """A flip in a sealed coordinate payload must be caught by the
        checksum (Application Detected), not silently used."""
        from repro.injection.faults import FaultSpec, Region
        from repro.injection.wrappers import install
        from repro.mpi.channel import HEADER_SIZE

        cfg = JobConfig(nprocs=2, round_limit=2000)
        # First coordinate message payload: right after the header of the
        # first received packet on rank 1.
        spec = FaultSpec(
            Region.MESSAGE, 1, bit=4, target_byte=HEADER_SIZE + 20
        )
        job = Job(MoldynApp(**SMALL_MOLDYN), cfg)
        record = install(job, spec)
        result = job.run()
        assert record.delivered
        assert result.status is JobStatus.APP_DETECTED
        assert "checksum" in result.detail
