"""Wavetoy application behaviour."""

import numpy as np
import pytest

from repro.apps import WavetoyApp
from repro.apps.wavetoy.io import format_field, parse_field
from repro.mpi.simulator import Job, JobConfig, JobStatus
from repro.mpi.traffic import summarize
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY


@pytest.fixture(scope="module")
def run():
    job = Job(WavetoyApp(**SMALL_WAVETOY), JobConfig(nprocs=SMALL_NPROCS))
    result = job.run()
    return result, job


class TestExecution:
    def test_completes(self, run):
        result, _ = run
        assert result.status is JobStatus.COMPLETED

    def test_output_written_by_rank0(self, run):
        result, _ = run
        assert "wavetoy.out" in result.outputs
        field = parse_field(result.outputs["wavetoy.out"])
        assert field.size == SMALL_WAVETOY["ny"] * SMALL_WAVETOY["nx"]

    def test_all_cells_nonzero(self, run):
        """Background keeps cells away from exact zero so low-order
        payload perturbations stay below the text precision."""
        result, _ = run
        field = parse_field(result.outputs["wavetoy.out"])
        assert np.all(field != 0.0)

    def test_field_is_near_zero_amplitude(self, run):
        result, _ = run
        field = parse_field(result.outputs["wavetoy.out"])
        assert np.abs(field).max() < 0.1  # "very close to zero"

    def test_wave_propagates(self, run):
        result, _ = run
        field = parse_field(result.outputs["wavetoy.out"])
        assert np.abs(field).max() > 1e-8  # the pulse did something

    def test_deterministic(self):
        cfg = JobConfig(nprocs=SMALL_NPROCS)
        r1 = Job(WavetoyApp(**SMALL_WAVETOY), cfg).run()
        r2 = Job(WavetoyApp(**SMALL_WAVETOY), cfg).run()
        assert r1.outputs == r2.outputs

    def test_traffic_mostly_user_data(self, run):
        _, job = run
        s = summarize(job)
        assert s.mean_user_percent > 75.0


class TestParameters:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            WavetoyApp(grid_size=10)

    def test_binary_output_mode(self):
        app = WavetoyApp(**{**SMALL_WAVETOY, "output_format": "binary"})
        result = Job(app, JobConfig(nprocs=SMALL_NPROCS)).run()
        assert isinstance(result.outputs["wavetoy.out"], bytes)

    def test_too_many_ranks_rejected(self):
        app = WavetoyApp(**SMALL_WAVETOY)
        with pytest.raises(ValueError, match="too small"):
            Job(app, JobConfig(nprocs=64))
        # construction already fails; nothing ever runs

    def test_single_rank(self):
        result = Job(WavetoyApp(**SMALL_WAVETOY), JobConfig(nprocs=1)).run()
        assert result.status is JobStatus.COMPLETED


class TestTextMasking:
    """The section-6.2 Cactus output-masking mechanism."""

    def test_low_order_perturbation_masked(self):
        values = np.full(16, 1.234567890123e-3)
        a = format_field(values, 4, 4, precision=6)
        values2 = values.copy()
        values2[5] *= 1 + 1e-9  # below 6 significant digits
        b = format_field(values2, 4, 4, precision=6)
        assert a == b

    def test_large_perturbation_visible(self):
        values = np.full(16, 1.2345e-3)
        a = format_field(values, 4, 4, precision=6)
        values2 = values.copy()
        values2[5] *= 2.0
        assert format_field(values2, 4, 4, precision=6) != a

    def test_stride_subsamples(self):
        values = np.arange(64.0)
        full = format_field(values, 8, 8, stride=1)
        sub = format_field(values, 8, 8, stride=2)
        assert len(sub) < len(full)

    def test_parse_roundtrip(self):
        values = np.linspace(-1, 1, 24)
        text = format_field(values, 4, 6, precision=17)
        np.testing.assert_allclose(parse_field(text), values)

    def test_format_validation(self):
        with pytest.raises(ValueError):
            format_field(np.zeros(3), 2, 2)
        with pytest.raises(ValueError):
            format_field(np.zeros(4), 2, 2, precision=0)
        with pytest.raises(ValueError):
            format_field(np.zeros(4), 2, 2, stride=0)
