"""Shared application machinery (StackLocals, build, error handler)."""

import pytest

from repro.apps.base import (
    MPIApplication,
    StackLocals,
    padding_code,
    unrolled_init_source,
)
from repro.cpu.isa import INSN_SIZE, Op, decode
from tests.conftest import build_image


class TestStackLocals:
    def _image(self):
        image, _ = build_image({"kern": "movi eax, 1\nret"})
        return image

    def test_set_get_roundtrip(self):
        image = self._image()
        loc = StackLocals(image, "kern", ("a", "b", "c"))
        loc.set("b", 0xCAFE)
        assert loc.get("b") == 0xCAFE
        assert loc.get("a") == 0

    def test_values_live_in_stack_memory(self):
        image = self._image()
        loc = StackLocals(image, "kern", ("ptr",))
        loc.set("ptr", 0x1234)
        assert image.stack_segment.read_u32(loc.addr("ptr")) == 0x1234
        assert image.stack_segment.contains(loc.addr("ptr"))

    def test_corruption_visible_on_read_back(self):
        """The stack->MPI-argument fault pathway."""
        image = self._image()
        loc = StackLocals(image, "kern", ("count",))
        loc.set("count", 96)
        image.stack_segment.flip_bit(loc.addr("count"), 31 % 8)
        assert loc.get("count") != 96

    def test_signed_read(self):
        image = self._image()
        loc = StackLocals(image, "kern", ("x",))
        loc.set("x", -3)
        assert loc.get_signed("x") == -3
        assert loc.get("x") == 0xFFFF_FFFD

    def test_frame_return_address_in_user_text(self):
        image = self._image()
        loc = StackLocals(image, "kern", ("x",))
        ebp, ret = next(iter(image.stack.walk_frames()))
        assert image.in_user_text(ret)

    def test_padding_reserved_below_fields(self):
        image = self._image()
        loc = StackLocals(image, "kern", ("x",), padding=256)
        assert loc.addr("x") - loc.frame.locals_base >= 256


class TestHelpers:
    def test_padding_code_is_valid(self):
        code = padding_code(256)
        assert len(code) == 256
        assert decode(code[:INSN_SIZE]).op is Op.NOP
        assert decode(code[-INSN_SIZE:]).op is Op.RET

    def test_unrolled_init_runs_once(self):
        src = unrolled_init_source(100)
        image, vm = build_image({"init": src})
        vm.call("init")
        sym = image.symtab.lookup("init")
        assert sym.size == pytest.approx(100 * INSN_SIZE, abs=3 * INSN_SIZE)


class TestApplicationBase:
    def test_unknown_params_rejected(self):
        class App(MPIApplication):
            DEFAULTS = {"a": 1}

        with pytest.raises(ValueError):
            App(b=2)
        assert App(a=5).params["a"] == 5

    def test_program_cache_keyed_by_codegen(self):
        from repro.apps import WavetoyApp

        a = WavetoyApp(nx=32)
        b = WavetoyApp(nx=32)
        c = WavetoyApp(nx=64)
        assert a.program() is b.program()
        assert a.program() is not c.program()
