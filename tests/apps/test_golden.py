"""Golden regression pins for the frozen application suite.

The campaign tables in EXPERIMENTS.md were measured against these exact
outputs (seed 12345, 8 ranks).  Any change to an application's physics,
kernels or communication invalidates the published numbers - these pins
make that impossible to do silently.  If you change an application on
purpose, re-run the campaigns and update both the hashes and
EXPERIMENTS.md.
"""

import hashlib

import pytest

from repro.mpi.simulator import Job, JobConfig

GOLDEN = {
    "wavetoy": (
        "207c7571be06d5f220fa10a51c9ee6e8c4b072e5a22a8f6a9815ba66bd105c5e",
        16969,
    ),
    "moldyn": (
        "698423ef2728bc37993a6027d5084199b455b340c141a56f055b6d2649672813",
        17035,
    ),
    "climate": (
        "799d5b8faed65bc01f49b0b70fae06a37a8f3a66cd973963a97e8705ba435e14",
        15820,
    ),
}


def output_digest(outputs: dict) -> str:
    h = hashlib.sha256()
    for name in sorted(outputs):
        v = outputs[name]
        h.update(name.encode())
        h.update(v if isinstance(v, bytes) else v.encode())
    return h.hexdigest()


@pytest.mark.parametrize("app_name", sorted(GOLDEN))
def test_golden_outputs(app_name):
    from repro.apps import APPLICATION_SUITE

    job = Job(APPLICATION_SUITE[app_name](), JobConfig(nprocs=8, seed=12345))
    result = job.run()
    assert result.completed
    digest, blocks = GOLDEN[app_name]
    assert output_digest(result.outputs) == digest, (
        f"{app_name} output changed - the EXPERIMENTS.md campaign numbers "
        f"are now stale; rerun them and update this pin"
    )
    assert max(result.blocks_per_rank) == blocks, (
        f"{app_name} block count changed (kernel/codegen drift) - the "
        f"injection time axis moved; rerun the campaigns"
    )
