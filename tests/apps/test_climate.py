"""Atmosphere-model application behaviour."""

import numpy as np
import pytest

from repro.apps import ClimateApp
from repro.mpi.simulator import Job, JobConfig, JobStatus
from repro.mpi.traffic import summarize
from tests.conftest import SMALL_CLIMATE, SMALL_NPROCS


@pytest.fixture(scope="module")
def run():
    job = Job(ClimateApp(**SMALL_CLIMATE), JobConfig(nprocs=SMALL_NPROCS))
    result = job.run()
    return result, job


class TestExecution:
    def test_completes(self, run):
        result, _ = run
        assert result.status is JobStatus.COMPLETED

    def test_binary_outputs(self, run):
        result, _ = run
        p = SMALL_CLIMATE
        expected = SMALL_NPROCS * p["nlon"] * p["nlat_local"] * 8
        assert len(result.outputs["climate_T.bin"]) == expected
        assert len(result.outputs["climate_Q.bin"]) == expected

    def test_fields_physical(self, run):
        result, _ = run
        T = np.frombuffer(result.outputs["climate_T.bin"], dtype=np.float64)
        Q = np.frombuffer(result.outputs["climate_Q.bin"], dtype=np.float64)
        assert np.all(np.isfinite(T))
        assert np.all(T > 150.0) and np.all(T < 400.0)
        assert np.all(Q >= SMALL_CLIMATE.get("qmin_check", 0.05))

    def test_control_dominated_traffic(self, run):
        """CAM's signature: header bytes dominate received volume."""
        _, job = run
        s = summarize(job)
        assert s.mean_header_percent > 40.0

    def test_bss_heavy_profile(self, run):
        """CAM's BSS dwarfs its heap (static field arrays)."""
        _, job = run
        image = job.images[1]
        sizes = image.section_sizes()
        assert sizes["bss"] > image.heap.high_water

    def test_deterministic(self):
        cfg = JobConfig(nprocs=SMALL_NPROCS)
        r1 = Job(ClimateApp(**SMALL_CLIMATE), cfg).run()
        r2 = Job(ClimateApp(**SMALL_CLIMATE), cfg).run()
        assert r1.outputs == r2.outputs

    def test_single_rank_degenerates(self):
        result = Job(ClimateApp(**SMALL_CLIMATE), JobConfig(nprocs=1)).run()
        assert result.status is JobStatus.COMPLETED


class TestMoistureCheck:
    def test_drained_moisture_aborts(self):
        """Section 6.2: 'any moisture value below a minimum threshold can
        trigger a warning and abort the application'."""
        app = ClimateApp(**{**SMALL_CLIMATE, "evap": 0.0, "precip": 5.0})
        result = Job(app, JobConfig(nprocs=2)).run()
        assert result.status is JobStatus.APP_DETECTED
        assert "QNEG" in result.detail or "moisture" in result.detail

    def test_corrupted_solar_descriptor_changes_output(self):
        """The work descriptor parameterizes the physics: corrupting its
        payload must perturb the binary output (silent data corruption)."""
        from repro.injection.faults import FaultSpec, Region
        from repro.injection.wrappers import install
        from repro.mpi.channel import HEADER_SIZE

        cfg = JobConfig(nprocs=2, round_limit=5000)
        reference = Job(ClimateApp(**SMALL_CLIMATE), cfg).run()
        # Rank 1's first received packet is a work descriptor; flip a
        # high mantissa bit of the solar value.
        spec = FaultSpec(Region.MESSAGE, 1, bit=4, target_byte=HEADER_SIZE + 6)
        job = Job(ClimateApp(**SMALL_CLIMATE), cfg)
        record = install(job, spec)
        result = job.run()
        assert record.delivered
        assert result.status in (JobStatus.COMPLETED, JobStatus.APP_DETECTED)
        if result.status is JobStatus.COMPLETED:
            assert result.outputs != reference.outputs
