"""Metrics registry: counters, histograms, snapshots, text round trip."""

import json
import math

import pytest

from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    parse_prometheus,
    render_prometheus,
)


class TestPrimitives:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", kind="a")
        c.inc()
        c.inc(2.5)
        assert reg.counter_value("hits", kind="a") == pytest.approx(3.5)
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_identity_is_name_plus_labels(self):
        reg = MetricsRegistry()
        reg.counter("hits", kind="a").inc()
        reg.counter("hits", kind="b").inc(5)
        assert reg.counter_value("hits", kind="a") == 1
        assert reg.counter_value("hits", kind="b") == 5
        assert reg.counter_value("hits", kind="c") == 0

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7)
        g.inc(-2)
        snap = reg.snapshot()
        assert snap.gauges[("depth", ())] == pytest.approx(5.0)

    def test_histogram_bucket_placement(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 3.0, 100.0):
            h.observe(v)
        # le=1 gets 0.5 and 1.0; le=2 none; le=4 gets 3.0; +Inf gets 100
        assert h.counts == [2, 0, 1, 1]
        assert h.cumulative() == [2, 2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(104.5)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(bounds=(2.0, 1.0))

    def test_default_buckets_are_powers_of_two(self):
        assert DEFAULT_BUCKETS[0] == 1.0
        assert all(b == 2 * a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))


class TestSnapshots:
    def _registry(self, values):
        reg = MetricsRegistry()
        for v in values:
            reg.counter("n", app="x").inc(v)
            reg.histogram("lat", region="stack").observe(v)
        return reg

    def test_merge_is_order_independent(self):
        a = self._registry([1, 2, 3]).snapshot()
        b = self._registry([10, 20]).snapshot()
        ab = MetricsSnapshot().merge(a).merge(b)
        ba = MetricsSnapshot().merge(b).merge(a)
        assert ab.counters == ba.counters
        assert ab.histograms == ba.histograms

    def test_registry_merges_snapshot(self):
        reg = self._registry([4])
        reg.merge(self._registry([8, 16]).snapshot())
        assert reg.counter_value("n", app="x") == 28
        _, _, total, count = reg.histogram_state("lat", region="stack")
        assert (total, count) == (28.0, 3)

    def test_merge_rejects_mismatched_bounds(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 3.0)).observe(1)
        with pytest.raises(ValueError, match="bound mismatch"):
            a.snapshot().merge(b.snapshot())

    def test_gauges_overwrite_on_merge(self):
        a = MetricsRegistry()
        a.gauge("g").set(1)
        b = MetricsRegistry()
        b.gauge("g").set(9)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.gauges[("g", ())] == 9.0


class TestTextFormat:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("repro_flips_total", region="stack").inc(3)
        reg.gauge("repro_done", app="wavetoy").set(12)
        h = reg.histogram("repro_latency", buckets=(1.0, 8.0), region="heap")
        h.observe(0.5)
        h.observe(100.0)
        return reg

    def test_round_trip(self):
        text = render_prometheus(self._populated())
        samples = parse_prometheus(text)
        assert samples[("repro_flips_total", (("region", "stack"),))] == 3.0
        assert samples[("repro_done", (("app", "wavetoy"),))] == 12.0
        assert (
            samples[("repro_latency_bucket", (("region", "heap"), ("le", "+Inf")))]
            == 2.0
        )
        assert samples[("repro_latency_count", (("region", "heap"),))] == 2.0

    def test_render_is_deterministic(self):
        assert render_prometheus(self._populated()) == render_prometheus(
            self._populated()
        )

    def test_type_lines_present(self):
        text = render_prometheus(self._populated())
        assert "# TYPE repro_flips_total counter" in text
        assert "# TYPE repro_latency histogram" in text

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("this is { not a metric\n")

    def test_parse_skips_comments_and_blanks(self):
        assert parse_prometheus("# HELP x y\n\n# TYPE x counter\nx 1\n") == {
            ("x", ()): 1.0
        }

    def test_parse_special_values(self):
        samples = parse_prometheus("a +Inf\nb -Inf\nc NaN\n")
        assert samples[("a", ())] == math.inf
        assert samples[("b", ())] == -math.inf
        assert math.isnan(samples[("c", ())])


class TestAdversarialRoundTrip:
    """``parse_prometheus(render_prometheus(reg))`` must be lossless on
    hostile inputs (ISSUE 9): label values needing escaping, histogram
    bucket ordering, non-finite values, snapshot-JSON round trips."""

    HOSTILE_VALUES = (
        'quote " inside',
        "back\\slash",
        "new\nline",
        "brace } comma , equals = done",
        'all of it: "\\}\n,',
        "",
    )

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        for i, value in enumerate(self.HOSTILE_VALUES):
            reg.counter("repro_hostile_total", detail=value).inc(i + 1)
        samples = parse_prometheus(render_prometheus(reg))
        for i, value in enumerate(self.HOSTILE_VALUES):
            assert samples[("repro_hostile_total", (("detail", value),))] == i + 1

    def test_nonfinite_values_round_trip(self):
        reg = MetricsRegistry()
        reg.gauge("repro_pos").set(math.inf)
        reg.gauge("repro_neg").set(-math.inf)
        reg.gauge("repro_nan").set(math.nan)
        samples = parse_prometheus(render_prometheus(reg))
        assert samples[("repro_pos", ())] == math.inf
        assert samples[("repro_neg", ())] == -math.inf
        assert math.isnan(samples[("repro_nan", ())])

    def test_histogram_buckets_cumulative_and_ordered(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat", buckets=(1.0, 4.0, 16.0), region="x")
        for value in (0.5, 2.0, 3.0, 10.0, 100.0):
            h.observe(value)
        samples = parse_prometheus(render_prometheus(reg))

        def bucket(le):
            # The renderer appends ``le`` after the identity labels.
            return samples[("repro_lat_bucket", (("region", "x"), ("le", le)))]

        counts = [bucket("1"), bucket("4"), bucket("16"), bucket("+Inf")]
        assert counts == [1, 3, 4, 5]  # cumulative, ascending
        assert counts == sorted(counts)
        assert samples[("repro_lat_sum", (("region", "x"),))] == pytest.approx(
            115.5
        )
        assert samples[("repro_lat_count", (("region", "x"),))] == 5

    def test_render_accepts_snapshot_directly(self):
        reg = MetricsRegistry()
        reg.counter("repro_total", k='v"1').inc(2)
        assert render_prometheus(reg.snapshot()) == render_prometheus(reg)

    def test_snapshot_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("repro_total", detail='has "quotes" and {braces}').inc(3)
        reg.gauge("repro_g", app="wavetoy").set(1.5)
        reg.histogram("repro_h", buckets=(2.0, 8.0), region="heap").observe(5)
        snap = reg.snapshot()
        clone = MetricsSnapshot.from_json(
            json.loads(json.dumps(snap.to_json()))
        )
        assert clone.counters == snap.counters
        assert clone.gauges == snap.gauges
        assert clone.histograms == snap.histograms

    def test_merged_snapshot_order_independent(self):
        """Fold three worker snapshots in both orders: identical render
        (the property behind jobs=1 vs jobs=4 endpoint equivalence)."""

        def worker(seed):
            reg = MetricsRegistry()
            reg.counter("repro_total", kind="a").inc(seed)
            reg.histogram("repro_h", buckets=(1.0, 8.0)).observe(seed)
            return reg.snapshot()

        parts = [worker(s) for s in (1, 2, 3)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in parts:
            forward.merge(snap)
        for snap in reversed(parts):
            backward.merge(snap)
        assert render_prometheus(forward) == render_prometheus(backward)
