"""The live telemetry service.

Acceptance bar (ISSUE 9): a mid-run ``/metrics`` scrape parses with
``parse_prometheus``; final endpoint totals equal the merged campaign
registry exactly, at any worker count; the standalone store follower
ingests only appended bytes and recovers from truncation.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine.store import ResultStore
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.observability.metrics import (
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from repro.observability.serve import (
    SERVE_SCHEMA_VERSION,
    StoreTelemetry,
    TelemetryHub,
    TelemetryServer,
    parse_endpoint,
)
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY

SEED = 20260808
N = 4


@pytest.fixture(scope="module")
def campaign():
    return Campaign.from_registry(
        "wavetoy", nprocs=SMALL_NPROCS, app_params=SMALL_WAVETOY, seed=SEED
    )


def _get(url: str) -> str:
    return urllib.request.urlopen(url, timeout=10).read().decode()


def _comparable(samples):
    """Samples that must agree across worker counts: everything except
    the pid-labelled per-worker throughput counter and driver gauges
    (final-state timing artifacts aside, gauges are set identically -
    but the worker counter genuinely differs by jobs)."""
    return {
        key: value
        for key, value in samples.items()
        if not key[0].startswith("repro_worker_trials_total")
    }


class TestParseEndpoint:
    def test_bare_port_binds_loopback(self):
        assert parse_endpoint("9100") == ("127.0.0.1", 9100)

    def test_host_and_port(self):
        assert parse_endpoint("0.0.0.0:8080") == ("0.0.0.0", 8080)

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            parse_endpoint("localhost:http")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            parse_endpoint("70000")


class TestTelemetryHub:
    def test_final_metrics_equal_merged_registry(self, campaign):
        hub = TelemetryHub()
        with TelemetryServer(hub) as srv:
            with campaign.engine(telemetry=hub) as eng:
                eng.run_region(Region.STACK, N)
            text = _get(srv.url + "/metrics")
        # The scrape and the end-of-run export read the same registry.
        assert text == render_prometheus(hub.registry)
        samples = parse_prometheus(text)
        assert (
            samples[
                (
                    "repro_trial_outcomes_total",
                    (("manifestation", "correct"),),
                )
            ]
            + sum(
                v
                for (name, labels), v in samples.items()
                if name == "repro_trial_outcomes_total"
                and labels != (("manifestation", "correct"),)
            )
            == N
        )

    def test_status_and_progress_payloads(self, campaign):
        hub = TelemetryHub()
        with TelemetryServer(hub) as srv:
            with campaign.engine(telemetry=hub) as eng:
                eng.run_region(Region.STACK, N)
            status = json.loads(_get(srv.url + "/status"))
            progress = json.loads(_get(srv.url + "/progress"))
        assert status["schema_version"] == SERVE_SCHEMA_VERSION
        (row,) = status["regions"]
        assert row["app"] == "wavetoy"
        assert row["region"] == "stack"
        assert row["trials"] == N
        assert row["achieved_d_percent"] > 0.0
        assert progress["trials_done"] == N
        assert progress["trials_planned"] == N
        assert progress["throughput_trials_per_second"] > 0.0
        assert progress["regions"] == [
            {"app": "wavetoy", "region": "stack", "planned": N}
        ]

    def test_midrun_scrapes_always_parse(self, campaign):
        """Scrape continuously while the campaign runs; every response
        must parse (a torn render would raise ValueError here)."""
        hub = TelemetryHub()
        done = threading.Event()
        failures: list[Exception] = []

        def run():
            try:
                with campaign.engine(telemetry=hub) as eng:
                    eng.run_region(Region.STACK, 3 * N)
                    eng.run_region(Region.HEAP, 3 * N)
            finally:
                done.set()

        with TelemetryServer(hub) as srv:
            worker = threading.Thread(target=run)
            worker.start()
            scrapes = 0
            while not done.is_set() or scrapes == 0:
                try:
                    parse_prometheus(_get(srv.url + "/metrics"))
                    json.loads(_get(srv.url + "/status"))
                    json.loads(_get(srv.url + "/progress"))
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append(exc)
                    break
                scrapes += 1
            worker.join()
        assert failures == []
        assert scrapes >= 1

    def test_endpoint_totals_identical_across_jobs(self, campaign):
        """jobs=1 and jobs=4 campaigns expose identical /metrics totals
        (modulo the per-worker pid counter) and identical /status rows."""
        payloads = {}
        for jobs in (1, 4):
            hub = TelemetryHub()
            with TelemetryServer(hub) as srv:
                with campaign.engine(telemetry=hub, jobs=jobs) as eng:
                    eng.run_region(Region.STACK, N)
                payloads[jobs] = (
                    _comparable(parse_prometheus(_get(srv.url + "/metrics"))),
                    json.loads(_get(srv.url + "/status"))["regions"],
                )
        assert payloads[1] == payloads[4]

    def test_unknown_endpoint_404(self):
        with TelemetryServer(TelemetryHub()) as srv:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(srv.url + "/nope")
            assert err.value.code == 404

    def test_index_names_endpoints(self):
        with TelemetryServer(TelemetryHub()) as srv:
            index = _get(srv.url + "/")
        for endpoint in ("/metrics", "/status", "/progress"):
            assert endpoint in index


class TestStoreTelemetry:
    def _store_with(self, tmp_path, results):
        store = ResultStore(tmp_path / "s.jsonl")
        for result in results:
            store.append(result)
        store.close()
        return store.path

    def test_follows_appends_incrementally(self, tmp_path):
        from tests.engine.test_trial_store import make_result

        path = self._store_with(tmp_path, [make_result(index=i) for i in range(3)])
        telemetry = StoreTelemetry(path)
        assert telemetry.status_payload()["regions"][0]["trials"] == 3
        offset_after_first = telemetry._follower._offset

        store = ResultStore(path)
        store.append(make_result(index=7))
        store.close()
        payload = telemetry.status_payload()
        assert payload["regions"][0]["trials"] == 4
        # Only the appended bytes were parsed.
        assert telemetry._follower._offset > offset_after_first

    def test_partial_trailing_line_deferred(self, tmp_path):
        from tests.engine.test_trial_store import make_result

        path = self._store_with(tmp_path, [make_result(index=i) for i in range(2)])
        with open(path, "a") as fh:
            fh.write('{"key": "torn')  # no newline: an in-flight append
        telemetry = StoreTelemetry(path)
        assert telemetry.status_payload()["regions"][0]["trials"] == 2
        with open(path, "a") as fh:
            fh.write('en line"}\n')  # completed, but not a valid result
        assert telemetry.status_payload()["regions"][0]["trials"] == 2

    def test_truncation_resets_the_fold(self, tmp_path):
        from tests.engine.test_trial_store import make_result

        path = self._store_with(tmp_path, [make_result(index=i) for i in range(5)])
        telemetry = StoreTelemetry(path)
        assert telemetry.progress_payload()["trials_done"] == 5

        path.write_text("")  # store rewritten from scratch
        store = ResultStore(path)
        store.append(make_result(index=0))
        store.close()
        assert telemetry.progress_payload()["trials_done"] == 1

    def test_metrics_endpoint_from_store(self, tmp_path):
        from tests.engine.test_trial_store import make_result

        path = self._store_with(tmp_path, [make_result(index=i) for i in range(3)])
        with TelemetryServer(StoreTelemetry(path)) as srv:
            samples = parse_prometheus(_get(srv.url + "/metrics"))
        assert (
            samples[
                ("repro_trial_outcomes_total", (("manifestation", "correct"),))
            ]
            == 3
        )
        assert (
            samples[
                (
                    "repro_campaign_trials_done",
                    (("app", "wavetoy"), ("region", "heap")),
                )
            ]
            == 3
        )
