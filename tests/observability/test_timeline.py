"""Fault-propagation timeline semantics."""

from repro.observability.timeline import PropagationTimeline, TimelineEvent


def ev(kind, blocks=None, **kw):
    return TimelineEvent(kind=kind, blocks=blocks, **kw)


class TestFirstWins:
    def test_first_injection_wins(self):
        tl = PropagationTimeline()
        tl.note_injection(ev("injection", blocks=10))
        tl.note_injection(ev("injection", blocks=99))  # stuck-at reassert
        assert tl.injection.blocks == 10
        assert [e.blocks for e in tl.events] == [10, 99]

    def test_first_divergence_wins(self):
        tl = PropagationTimeline()
        tl.note_divergence(ev("detector:checksum", blocks=20))
        tl.note_divergence(ev("app_abort", blocks=30))
        assert tl.divergence.kind == "detector:checksum"


class TestLatency:
    def test_latency_is_block_difference(self):
        tl = PropagationTimeline()
        tl.note_injection(ev("injection", blocks=100))
        tl.note_divergence(ev("signal:SIGSEGV", blocks=350))
        assert tl.latency_blocks == 250

    def test_latency_clamped_nonnegative(self):
        # Cross-rank skew: the detecting rank's clock may trail the
        # injected rank's by a scheduling round.
        tl = PropagationTimeline()
        tl.note_injection(ev("injection", blocks=100, rank=0))
        tl.note_divergence(ev("detector:nan", blocks=95, rank=1))
        assert tl.latency_blocks == 0

    def test_latency_none_without_both_instants(self):
        tl = PropagationTimeline()
        assert tl.latency_blocks is None
        tl.note_injection(ev("injection", blocks=5))
        assert tl.latency_blocks is None
        tl.note_divergence(ev("hang", blocks=None))
        assert tl.latency_blocks is None


class TestSummary:
    def test_empty_summary(self):
        assert PropagationTimeline().summary() == {}

    def test_full_summary(self):
        tl = PropagationTimeline()
        tl.note_injection(
            ev("injection", blocks=10, insns=40, byte_offset=1234, rank=1)
        )
        tl.note_divergence(ev("detector:checksum", blocks=60))
        assert tl.summary() == {
            "injected_at_blocks": 10,
            "injected_at_insns": 40,
            "injected_byte": 1234,
            "diverged_at_blocks": 60,
            "divergence_kind": "detector:checksum",
            "latency_blocks": 50,
        }

    def test_event_list_is_bounded(self):
        tl = PropagationTimeline(max_events=4)
        for i in range(10):
            tl.note_divergence(ev("detector:nan", blocks=i))
        assert len(tl.events) == 4
        assert tl.divergence.blocks == 0
