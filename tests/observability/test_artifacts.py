"""Artifact-grade run directories.

Acceptance bar (ISSUE 9): ``campaign run --artifacts DIR`` leaves a
complete run record, and ``summary.json``/``report.html`` regenerate
**bit-identically** from ``manifest.json`` + ``events.jsonl`` +
``metrics.jsonl`` alone.
"""

import json
import os
import stat

import pytest

from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.observability.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    RunArtifacts,
    build_summary,
    check_outputs,
    render_report,
    write_outputs,
)
from repro.observability.metrics import MetricsRegistry, MetricsSnapshot
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY

SEED = 20260808
N = 4


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One campaign with artifacts enabled, shared by every test."""
    directory = tmp_path_factory.mktemp("artifacts") / "run"
    campaign = Campaign.from_registry(
        "wavetoy", nprocs=SMALL_NPROCS, app_params=SMALL_WAVETOY, seed=SEED
    )
    registry = MetricsRegistry()
    artifacts = RunArtifacts(
        directory,
        {
            "app": "wavetoy",
            "seed": SEED,
            "command": "python -m repro campaign run --app wavetoy",
        },
        metrics_interval=3,
    )
    with campaign.engine(
        metrics=registry, artifacts=artifacts, log_interval=2
    ) as eng:
        eng.run_region(Region.STACK, N)
        eng.run_region(Region.HEAP, N)
    artifacts.finalize(registry)
    return directory


def _events(run_dir):
    with open(run_dir / "events.jsonl") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class TestRunDirectory:
    def test_all_artifacts_present(self, run_dir):
        names = {p.name for p in run_dir.iterdir()}
        assert {
            "manifest.json",
            "events.jsonl",
            "metrics.jsonl",
            "summary.json",
            "report.html",
            "reproduce.sh",
        } <= names

    def test_manifest_identity(self, run_dir):
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert manifest["app"] == "wavetoy"
        assert manifest["seed"] == SEED

    def test_event_lifecycle(self, run_dir):
        events = _events(run_dir)
        assert events[0]["type"] == "campaign_start"
        assert events[-1]["type"] == "campaign_end"
        kinds = [e["type"] for e in events]
        assert kinds.count("trial") == 2 * N
        assert kinds.count("region_final") == 2
        assert kinds.count("progress") >= 2  # the two region finals
        finals = [e for e in events if e["type"] == "region_final"]
        assert {e["region"] for e in finals} == {"stack", "heap"}
        assert all(e["trials"] == N for e in finals)

    def test_metrics_flushes_end_with_registry_state(self, run_dir):
        with open(run_dir / "metrics.jsonl") as fh:
            flushes = [json.loads(line) for line in fh if line.strip()]
        assert len(flushes) >= 2  # periodic (interval 3, 8 trials) + final
        assert flushes[-1]["trials"] == 2 * N
        snap = MetricsSnapshot.from_json(flushes[-1]["snapshot"])
        total = sum(
            v
            for (name, _), v in snap.counters.items()
            if name == "repro_trial_outcomes_total"
        )
        assert total == 2 * N

    def test_reproduce_script(self, run_dir):
        script = run_dir / "reproduce.sh"
        assert script.stat().st_mode & stat.S_IXUSR
        text = script.read_text()
        assert text.startswith("#!/bin/sh")
        assert "python -m repro campaign run --app wavetoy" in text


class TestRegeneration:
    def test_summary_is_pure_function_of_logs(self, run_dir):
        on_disk = (run_dir / "summary.json").read_text()
        derived = json.dumps(build_summary(run_dir), indent=2, sort_keys=True)
        assert on_disk == derived + "\n"

    def test_regeneration_bit_identical(self, run_dir):
        summary_bytes = (run_dir / "summary.json").read_bytes()
        report_bytes = (run_dir / "report.html").read_bytes()
        os.unlink(run_dir / "summary.json")
        os.unlink(run_dir / "report.html")
        write_outputs(run_dir)
        assert (run_dir / "summary.json").read_bytes() == summary_bytes
        assert (run_dir / "report.html").read_bytes() == report_bytes

    def test_check_outputs_clean_then_tampered(self, run_dir):
        assert check_outputs(run_dir) == []
        original = (run_dir / "summary.json").read_text()
        try:
            (run_dir / "summary.json").write_text(original + " ")
            assert check_outputs(run_dir) == ["summary.json"]
        finally:
            (run_dir / "summary.json").write_text(original)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not an artifact run"):
            build_summary(tmp_path)

    def test_summary_tallies(self, run_dir):
        summary = json.loads((run_dir / "summary.json").read_text())
        assert summary["schema_version"] == ARTIFACT_SCHEMA_VERSION
        assert summary["trials"] == 2 * N
        assert {r["region"] for r in summary["regions"]} == {"stack", "heap"}
        for row in summary["regions"]:
            assert row["trials"] == N
            assert 0 <= row["errors"] <= N
        assert summary["wall_seconds"] is not None
        assert summary["throughput_trials_per_second"] > 0

    def test_summary_survives_torn_tail(self, run_dir, tmp_path):
        """An interrupted run (partial trailing event) still summarizes."""
        import shutil

        clone = tmp_path / "torn"
        shutil.copytree(run_dir, clone)
        with open(clone / "events.jsonl", "a") as fh:
            fh.write('{"type": "trial", "key": "torn')
        assert build_summary(clone)["trials"] == 2 * N


class TestReport:
    def test_report_is_deterministic(self, run_dir):
        manifest = json.loads((run_dir / "manifest.json").read_text())
        summary = build_summary(run_dir)
        assert render_report(manifest, summary) == render_report(
            manifest, summary
        )

    def test_report_contents(self, run_dir):
        html = (run_dir / "report.html").read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "wavetoy" in html
        assert "Outcome mix per region" in html
        for region in ("stack", "heap"):
            assert region in html
        # Dark mode is selected, not auto-flipped; both palettes ship.
        assert "prefers-color-scheme: dark" in html

    def test_report_escapes_untrusted_fields(self, tmp_path):
        summary = {
            "schema_version": 1,
            "trials": 1,
            "errors": 0,
            "resumed": 0,
            "regions": [],
            "region_finals": [],
            "progress_events": 0,
            "metrics_flushes": 0,
            "metrics": None,
            "wall_seconds": 1.0,
            "throughput_trials_per_second": 1.0,
        }
        html = render_report({"app": "<script>alert(1)</script>"}, summary)
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html
