"""End-to-end observability through the campaign engine.

The acceptance bar for the subsystem: a traced trial carries spans from
all three execution layers (VM kernel, MPI channel, injection), metrics
merge bit-identically across worker counts, and error-latency data
survives the result-store round trip.
"""

import json

import pytest

from repro.engine.trial import TrialResult
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.injection.outcomes import Manifestation
from repro.observability import runtime
from repro.observability.export import TraceCollector, validate_chrome_trace
from repro.observability.metrics import MetricsRegistry
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY

SEED = 20260806
N = 4


@pytest.fixture(scope="module")
def campaign():
    return Campaign.from_registry(
        "wavetoy", nprocs=SMALL_NPROCS, app_params=SMALL_WAVETOY, seed=SEED
    )


def _comparable(snapshot):
    """Snapshot content that must be identical across worker counts:
    everything except gauges (driver-local) and the pid-labelled
    per-worker throughput counter."""
    counters = {
        k: v
        for k, v in snapshot.counters.items()
        if k[0] != "repro_worker_trials_total"
    }
    return counters, snapshot.histograms


class TestTracedTrial:
    def test_all_three_layers_present(self, campaign, tmp_path):
        reg = MetricsRegistry()
        coll = TraceCollector()
        with campaign.engine(metrics=reg, trace=coll) as eng:
            specs = [eng.make_spec(Region.STACK, i) for i in range(N)]
            results = eng.run_trials(specs)
        obj = json.loads(
            coll.write(tmp_path / "t.json", metadata={}).read_text()
        )
        assert validate_chrome_trace(obj) == []
        cats = {
            e.get("cat")
            for e in obj["traceEvents"]
            if e.get("ph") != "M"
        }
        assert {"vm", "mpi", "channel"} <= cats
        if any(r.delivered for r in results):
            assert "injection" in cats

    def test_trial_timeline_fields_filled(self, campaign):
        reg = MetricsRegistry()
        with campaign.engine(metrics=reg) as eng:
            results = eng.run_trials(
                [eng.make_spec(Region.STACK, i) for i in range(N)]
            )
        for r in results:
            if r.delivered:
                assert r.injected_at_blocks is not None
                assert r.injected_at_insns is not None
            if r.manifestation is not Manifestation.CORRECT:
                assert r.divergence_kind is not None
            if r.manifestation is Manifestation.CORRECT:
                assert r.latency_blocks is None


class TestResultRoundTrip:
    def test_json_preserves_timeline_digest(self):
        result = TrialResult(
            key="k",
            app="wavetoy",
            region=Region.MESSAGE,
            index=3,
            manifestation=Manifestation.APP_DETECTED,
            delivered=True,
            detail="payload",
            injected_at_blocks=120,
            injected_at_insns=480,
            injected_byte=9000,
            diverged_at_blocks=150,
            divergence_kind="detector:checksum",
            latency_blocks=30,
        )
        back = TrialResult.from_json(result.to_json())
        assert back.injected_at_blocks == 120
        assert back.injected_byte == 9000
        assert back.divergence_kind == "detector:checksum"
        assert back.latency_blocks == 30
        assert back.resumed

    def test_old_store_lines_still_load(self):
        # Pre-observability JSONL lines have no timeline fields.
        back = TrialResult.from_json(
            {
                "key": "k",
                "app": "wavetoy",
                "region": "stack",
                "index": 0,
                "manifestation": "crash",
                "delivered": True,
            }
        )
        assert back.latency_blocks is None
        assert back.divergence_kind is None


class TestDeterminism:
    def test_metrics_identical_serial_vs_parallel(self, campaign):
        snaps = []
        for jobs in (1, 2):
            reg = MetricsRegistry()
            campaign.run_region(Region.STACK, N, jobs=jobs, metrics=reg)
            snaps.append(reg.snapshot())
        assert _comparable(snaps[0]) == _comparable(snaps[1])

    def test_latency_histogram_survives_store_resume(self, campaign, tmp_path):
        store = tmp_path / "store.jsonl"
        fresh = MetricsRegistry()
        campaign.run_region(Region.STACK, N, store=str(store), metrics=fresh)
        resumed = MetricsRegistry()
        result = campaign.run_region(
            Region.STACK, N, store=str(store), resume=True, metrics=resumed
        )
        assert result.resumed == N
        name = "repro_error_latency_blocks"
        assert {
            k: v for k, v in fresh.snapshot().histograms.items() if k[0] == name
        } == {
            k: v for k, v in resumed.snapshot().histograms.items() if k[0] == name
        }
        # outcome tallies rebuild identically too
        for m in Manifestation:
            assert fresh.counter_value(
                "repro_trial_outcomes_total", manifestation=m.value
            ) == resumed.counter_value(
                "repro_trial_outcomes_total", manifestation=m.value
            )


class TestPrunedCounter:
    def test_pruned_trials_are_counted_with_reasons(self, campaign):
        reg = MetricsRegistry()
        result = campaign.run_region(
            Region.TEXT, 6, metrics=reg, prune_masked=True
        )
        assert result.pruned > 0
        snap = reg.snapshot()
        pruned_counts = {
            dict(k[1])["reason"]: v
            for k, v in snap.counters.items()
            if k[0] == "repro_trials_pruned_total"
        }
        assert sum(pruned_counts.values()) == result.pruned
        assert all(
            dict(k[1])["region"] == "text"
            for k in snap.counters
            if k[0] == "repro_trials_pruned_total"
        )
        # reasons are the oracle's proof-rule names, not free text
        assert set(pruned_counts) <= {
            "benign-text-bit", "cold-text", "cold-symbol", "fp-bookkeeping"
        }


class TestForkSafety:
    def test_ambient_runtime_survives_parallel_campaign(self, campaign):
        """Satellite check: enabling the ambient tracer in the parent
        neither leaks into trial scopes nor is clobbered by fork-based
        workers, and results are unchanged."""
        baseline = campaign.run_region(Region.MESSAGE, 2, jobs=1)
        tracer, metrics = runtime.enable()
        try:
            traced = campaign.run_region(Region.MESSAGE, 2, jobs=2)
            assert runtime.TRACER is tracer
            assert runtime.METRICS is metrics
        finally:
            runtime.disable()
        assert not runtime.enabled()
        assert traced.tally.counts == baseline.tally.counts

    def test_engine_progress_shim_and_registry(self, campaign):
        events = []
        reg = MetricsRegistry()
        campaign.run_region(
            Region.MESSAGE,
            2,
            metrics=reg,
            progress=events.append,
            log_interval=1,
        )
        assert events and events[-1].final
        assert all(e.region == "message" for e in events)
        assert (
            reg.counter_value(
                "repro_campaign_progress_events_total",
                app=campaign.app_name,
                region="message",
            )
            > 0
        )
        labels_done = reg.snapshot().gauges[
            (
                "repro_campaign_trials_done",
                (("app", campaign.app_name), ("region", "message")),
            )
        ]
        assert labels_done == 2.0


class TestCli:
    def test_campaign_status_json(self, campaign, tmp_path, capsys):
        from repro.__main__ import main

        store = tmp_path / "store.jsonl"
        campaign.run_region(Region.STACK, 2, store=str(store))
        assert main(["campaign", "status", "--store", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (row,) = payload["regions"]
        assert row["region"] == "stack"
        assert row["trials"] == 2
        assert sum(row["manifestations"].values()) == 2
        assert row["achieved_d_percent"] > 0

    def test_trace_check_cli(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.observability.tracer import Tracer

        t = Tracer()
        t.complete("kernel:k", "vm", ts=0, dur=3)
        t.instant("channel:recv", "channel", ts=1)
        coll = TraceCollector()
        coll.add_trial("stack", 0, "s0", t.events)
        path = coll.write(tmp_path / "t.json")
        assert (
            main(["trace", "check", "--trace", str(path), "--require", "vm,channel"])
            == 0
        )
        assert (
            main(
                ["trace", "check", "--trace", str(path), "--require", "injection"]
            )
            == 1
        )
        out = capsys.readouterr()
        assert "missing required category" in out.err
