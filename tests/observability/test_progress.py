"""ProgressEmitter: trial-count throttling and registry fan-out."""

from repro.engine.progress import ProgressEmitter, ProgressEvent, format_progress
from repro.observability.metrics import MetricsRegistry


def make_event(done=10, final=False, target_d=None):
    return ProgressEvent(
        app="wavetoy",
        region="stack",
        done=done,
        planned=20,
        resumed=1,
        errors=2,
        achieved_d=0.12,
        target_d=target_d,
        final=final,
    )


class TestThrottle:
    def test_every_nth_trial_per_region(self):
        em = ProgressEmitter(callback=lambda e: None, log_interval=3)
        due = [em.note_trial("app", "stack") for _ in range(7)]
        assert due == [False, False, True, False, False, True, False]

    def test_regions_counted_independently(self):
        em = ProgressEmitter(callback=lambda e: None, log_interval=2)
        assert not em.note_trial("app", "stack")
        assert not em.note_trial("app", "heap")
        assert em.note_trial("app", "stack")
        assert em.note_trial("app", "heap")

    def test_zero_interval_never_due(self):
        em = ProgressEmitter(callback=lambda e: None, log_interval=0)
        assert not any(em.note_trial("app", "stack") for _ in range(10))

    def test_inactive_emitter_never_due(self):
        em = ProgressEmitter(log_interval=2)  # no callback, no metrics
        assert not em.active
        assert not any(em.note_trial("app", "stack") for _ in range(4))


class TestFanOut:
    def test_metrics_only_emission(self):
        reg = MetricsRegistry()
        em = ProgressEmitter(log_interval=1, metrics=reg)
        assert em.active
        em.emit(make_event(done=10))
        em.emit(make_event(done=15))
        snap = reg.snapshot()
        labels = (("app", "wavetoy"), ("region", "stack"))
        assert snap.gauges[("repro_campaign_trials_done", labels)] == 15.0
        assert snap.gauges[("repro_campaign_errors", labels)] == 2.0
        assert (
            reg.counter_value(
                "repro_campaign_progress_events_total", app="wavetoy", region="stack"
            )
            == 2
        )

    def test_deprecated_callback_shim_still_fires(self):
        seen = []
        em = ProgressEmitter(callback=seen.append, log_interval=1)
        event = make_event()
        em.emit(event)
        assert seen == [event]

    def test_both_sinks_fed(self):
        seen = []
        reg = MetricsRegistry()
        em = ProgressEmitter(callback=seen.append, log_interval=1, metrics=reg)
        em.emit(make_event())
        assert len(seen) == 1
        assert (
            reg.counter_value(
                "repro_campaign_progress_events_total", app="wavetoy", region="stack"
            )
            == 1
        )


class TestFormat:
    def test_line_contents(self):
        line = format_progress(make_event(final=True, target_d=0.05))
        assert "[wavetoy:stack]" in line
        assert "10/20 trials" in line
        assert "(target 5.0%)" in line
        assert line.endswith("[done]")
