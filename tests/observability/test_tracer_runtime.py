"""Tracer event shapes and the runtime activation contract."""

import pytest

from repro.observability import runtime
from repro.observability.metrics import MetricsRegistry
from repro.observability.timeline import PropagationTimeline
from repro.observability.tracer import Tracer


@pytest.fixture(autouse=True)
def _clean_runtime():
    runtime.disable()
    yield
    runtime.disable()


class TestTracer:
    def test_complete_span_shape(self):
        t = Tracer()
        t.complete("kernel:wt_step", "vm", ts=10, dur=5, tid=2, args={"insns": 40})
        (event,) = t.events
        assert event["ph"] == "X"
        assert event["ts"] == 10 and event["dur"] == 5
        assert event["tid"] == 2 and event["pid"] == 0
        assert event["args"] == {"insns": 40}

    def test_zero_duration_span_widened_to_one(self):
        t = Tracer()
        t.complete("k", "vm", ts=0, dur=0)
        assert t.events[0]["dur"] == 1

    def test_instant_and_counter(self):
        t = Tracer()
        t.instant("inject:flip", "injection", ts=3, tid=1)
        t.counter("queue", ts=4, values={"depth": 2})
        assert t.events[0]["ph"] == "i" and t.events[0]["s"] == "t"
        assert t.events[1]["ph"] == "C"
        assert t.categories() == {"injection", "counter"}

    def test_event_cap_counts_drops(self):
        t = Tracer(max_events=2)
        for i in range(5):
            t.instant("e", "vm", ts=i)
        assert len(t) == 2
        assert t.dropped == 3


class TestRuntime:
    def test_disabled_by_default(self):
        assert runtime.TRACER is None
        assert runtime.METRICS is None
        assert not runtime.enabled()

    def test_activate_restores_prior_scope(self):
        outer = Tracer()
        runtime.enable(tracer=outer)
        inner = Tracer()
        with runtime.activate(tracer=inner):
            assert runtime.TRACER is inner
            assert runtime.METRICS is None
        assert runtime.TRACER is outer

    def test_activate_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with runtime.activate(tracer=Tracer()):
                raise RuntimeError("boom")
        assert runtime.TRACER is None

    def test_enable_idempotent(self):
        t1, m1 = runtime.enable()
        t2, m2 = runtime.enable()
        assert t1 is t2 and m1 is m2
        t3, _ = runtime.enable(tracer=Tracer())
        assert t3 is not t1

    def test_disable_idempotent(self):
        runtime.enable()
        runtime.disable()
        runtime.disable()
        assert not runtime.enabled()


class TestNoteHelpers:
    def test_note_detector_counts_and_stamps(self):
        reg = MetricsRegistry()
        tl = PropagationTimeline()
        with runtime.activate(metrics=reg, timeline=tl):
            runtime.note_detector("checksum", rank=1, blocks=50)
            runtime.note_detector("abft", corrected=True)
        assert (
            reg.counter_value(
                "repro_detector_firings_total", family="checksum", result="detected"
            )
            == 1
        )
        assert (
            reg.counter_value(
                "repro_detector_firings_total", family="abft", result="corrected"
            )
            == 1
        )
        assert tl.divergence.kind == "detector:checksum"
        assert tl.divergence.blocks == 50

    def test_note_injection_stamps_first_delivery(self):
        tl = PropagationTimeline()
        reg = MetricsRegistry()
        with runtime.activate(metrics=reg, timeline=tl):
            runtime.note_injection(rank=0, blocks=100, insns=400, region="stack")
            runtime.note_injection(rank=0, blocks=200, region="stack")
        assert tl.injection.blocks == 100
        assert tl.injection.insns == 400
        assert (
            reg.counter_value("repro_injection_flips_total", region="stack") == 2
        )

    def test_detector_beats_termination_for_divergence(self):
        tl = PropagationTimeline()
        with runtime.activate(timeline=tl):
            runtime.note_detector("nan", rank=2, blocks=70)
            runtime.note_termination("app_abort", rank=2, blocks=90)
        assert tl.divergence.kind == "detector:nan"
        assert len(tl.events) == 2

    def test_helpers_are_noops_when_disabled(self):
        runtime.note_detector("checksum")
        runtime.note_injection(rank=0, blocks=1)
        runtime.note_termination("hang", rank=0, blocks=2)  # must not raise

    def test_note_termination_traces_instant(self):
        t = Tracer()
        with runtime.activate(tracer=t):
            runtime.note_termination("signal:SIGSEGV", rank=3, blocks=44)
        (event,) = t.events
        assert event["name"] == "end:signal:SIGSEGV"
        assert event["cat"] == "trial"
        assert event["tid"] == 3
