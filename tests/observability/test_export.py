"""Chrome trace export, validation, and multi-trial merging."""

import json

import pytest

from repro.observability.export import (
    TraceCollector,
    chrome_trace,
    trace_categories,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.observability.tracer import Tracer


def _events():
    t = Tracer()
    t.complete("kernel:step", "vm", ts=0, dur=10, tid=0)
    t.instant("channel:recv", "channel", ts=4, tid=1)
    t.instant("inject:flip", "injection", ts=6, tid=0)
    return t.events


class TestValidation:
    def test_valid_trace_passes(self):
        assert validate_chrome_trace(chrome_trace(_events())) == []

    def test_top_level_must_be_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"other": 1}) != []

    def test_bad_phase_and_missing_name(self):
        obj = chrome_trace(
            [{"name": "x", "ph": "Z", "ts": 0, "pid": 0, "tid": 0}]
        )
        assert any("bad phase" in p for p in validate_chrome_trace(obj))
        obj = chrome_trace([{"ph": "i", "ts": 0, "pid": 0, "tid": 0}])
        assert any("missing name" in p for p in validate_chrome_trace(obj))

    def test_negative_ts_and_missing_dur(self):
        obj = chrome_trace(
            [{"name": "x", "ph": "i", "ts": -5, "pid": 0, "tid": 0}]
        )
        assert any("bad ts" in p for p in validate_chrome_trace(obj))
        obj = chrome_trace([{"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}])
        assert any("bad dur" in p for p in validate_chrome_trace(obj))

    def test_metadata_events_skip_ts_check(self):
        obj = chrome_trace(
            [{"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {}}]
        )
        assert validate_chrome_trace(obj) == []

    def test_problem_list_truncates(self):
        events = [{"bogus": True}] * 200
        problems = validate_chrome_trace(chrome_trace(events))
        assert problems[-1] == "... (truncated)"
        assert len(problems) <= 51

    def test_categories(self):
        obj = chrome_trace(_events())
        assert trace_categories(obj) == {"vm", "channel", "injection"}


class TestWrite:
    def test_file_round_trip(self, tmp_path):
        path = write_chrome_trace(
            tmp_path / "t.json", _events(), metadata={"app": "wavetoy"}
        )
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []
        assert obj["otherData"]["app"] == "wavetoy"
        assert obj["displayTimeUnit"] == "ms"


class TestCollector:
    def test_pids_sorted_by_region_and_index(self):
        coll = TraceCollector()
        # insertion order deliberately scrambled (parallel completion)
        coll.add_trial("stack", 1, "s1", _events())
        coll.add_trial("heap", 0, "h0", _events())
        coll.add_trial("stack", 0, "s0", _events())
        merged = coll.merged_events()
        names = {
            e["pid"]: e["args"]["name"]
            for e in merged
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert names == {1: "h0", 2: "s0", 3: "s1"}

    def test_thread_metadata_per_rank(self):
        coll = TraceCollector()
        coll.add_trial("stack", 0, "s0", _events())
        threads = [
            e
            for e in coll.merged_events()
            if e.get("ph") == "M" and e["name"] == "thread_name"
        ]
        assert {t["tid"] for t in threads} == {0, 1}

    def test_duplicate_trials_ignored(self):
        coll = TraceCollector()
        coll.add_trial("stack", 0, "first", _events())
        coll.add_trial("stack", 0, "second", _events())
        assert len(coll) == 1

    def test_max_trials_counts_dropped(self):
        coll = TraceCollector(max_trials=2)
        with pytest.warns(UserWarning, match="max_trials=2"):
            for i in range(5):
                coll.add_trial("stack", i, f"s{i}", _events())
        assert len(coll) == 2
        assert coll.dropped == 3

    def test_write_validates(self, tmp_path):
        coll = TraceCollector()
        coll.add_trial("message", 0, "m0", _events())
        path = coll.write(tmp_path / "merged.json", metadata={"seed": 1})
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []
        assert obj["otherData"] == {"trials": 1, "dropped_trials": 0, "seed": 1}


class TestDropAccounting:
    """The ``max_trials`` cap never drops silently (ISSUE 9): a counter
    on the metrics path plus a one-shot warning."""

    def test_drop_increments_attached_metrics(self):
        from repro.observability.metrics import MetricsRegistry

        reg = MetricsRegistry()
        coll = TraceCollector(max_trials=1)
        coll.metrics = reg
        with pytest.warns(UserWarning, match="max_trials=1"):
            for i in range(4):
                coll.add_trial("stack", i, f"s{i}", _events())
        assert coll.dropped == 3
        assert reg.counter_value("repro_trace_trials_dropped_total") == 3

    def test_warning_fires_once(self):
        import warnings as _warnings

        coll = TraceCollector(max_trials=1)
        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            for i in range(5):
                coll.add_trial("stack", i, f"s{i}", _events())
        drops = [w for w in caught if "max_trials" in str(w.message)]
        assert len(drops) == 1

    def test_add_trial_reports_acceptance(self):
        coll = TraceCollector(max_trials=1)
        assert coll.add_trial("stack", 0, "s0", _events()) is True
        with pytest.warns(UserWarning):
            assert coll.add_trial("stack", 1, "s1", _events()) is False
        # A duplicate of a kept trial is not a drop.
        assert coll.add_trial("stack", 0, "again", _events()) is True
        assert coll.dropped == 1

    def test_dropped_count_lands_in_trace_metadata(self, tmp_path):
        coll = TraceCollector(max_trials=1)
        with pytest.warns(UserWarning):
            for i in range(3):
                coll.add_trial("stack", i, f"s{i}", _events())
        obj = json.loads(coll.write(tmp_path / "t.json").read_text())
        assert obj["otherData"]["dropped_trials"] == 2
