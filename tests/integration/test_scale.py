"""Scale and soak checks (marked slow): larger rank counts, longer runs."""

import pytest

from repro.mpi.simulator import Job, JobConfig, JobStatus


@pytest.mark.slow
class TestScale:
    def test_wavetoy_sixteen_ranks(self):
        from repro.apps import WavetoyApp

        result = Job(WavetoyApp(), JobConfig(nprocs=16)).run()
        assert result.status is JobStatus.COMPLETED

    def test_moldyn_sixteen_ranks(self):
        from repro.apps import MoldynApp

        result = Job(MoldynApp(), JobConfig(nprocs=16)).run()
        assert result.status is JobStatus.COMPLETED

    def test_climate_sixteen_ranks(self):
        from repro.apps import ClimateApp

        result = Job(ClimateApp(), JobConfig(nprocs=16)).run()
        assert result.status is JobStatus.COMPLETED

    def test_wavetoy_longer_run_amplifies_perturbation(self):
        """Section 6.2: "executing more Cactus Wavetoy iterations will
        almost always yield incorrect outputs (the error amplifies)" -
        with damping disabled, a perturbation visible at few steps stays
        visible at many."""
        from repro.apps import WavetoyApp
        from repro.harness.runner import run_fault_free
        from repro.injection import classify, Manifestation

        params = dict(steps=48, damping=0.0, output_stride=1)
        cfg = JobConfig(nprocs=8)
        ref = run_fault_free(lambda: WavetoyApp(**params), cfg)
        job = Job(WavetoyApp(**params), cfg)

        def corrupt(j):
            vm = j.vms[3]

            def hook(v):
                chunks = v.image.heap.user_chunks()
                ucurr = chunks[3]
                v.image.heap_segment.flip_bit(ucurr.addr + (3 * 96 + 40) * 8 + 6, 4)

            vm.schedule_hook(2000, hook)

        job.pre_run_hooks.append(corrupt)
        result = job.run()
        assert classify(result, ref) is Manifestation.INCORRECT

    def test_rank_counts_change_decomposition_not_physics(self):
        """The gathered wavetoy field must agree (to roundoff) across
        rank counts: decomposition is purely a communication concern."""
        import numpy as np

        from repro.apps import WavetoyApp
        from repro.apps.wavetoy.io import parse_field

        fields = {}
        for n in (2, 4, 8):
            result = Job(
                WavetoyApp(output_precision=12, output_stride=1),
                JobConfig(nprocs=n),
            ).run()
            assert result.status is JobStatus.COMPLETED
            fields[n] = parse_field(result.outputs["wavetoy.out"])
        np.testing.assert_allclose(fields[2], fields[4], rtol=1e-9)
        np.testing.assert_allclose(fields[4], fields[8], rtol=1e-9)
