"""End-to-end fault scenarios: specific mechanisms the paper describes,
each driven through the full stack (app + runtime + injector +
classifier)."""

import pytest

from repro.harness.runner import run_fault_free, run_with_fault
from repro.injection.faults import FaultSpec, Region
from repro.injection.outcomes import Manifestation
from repro.mpi.simulator import JobConfig
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY


def wavetoy():
    from repro.apps import WavetoyApp

    return WavetoyApp(**SMALL_WAVETOY)


@pytest.fixture(scope="module")
def cfg():
    return JobConfig(nprocs=SMALL_NPROCS)


@pytest.fixture(scope="module")
def reference(cfg):
    return run_fault_free(wavetoy, cfg)


class TestRegisterScenarios:
    def test_esp_flip_crashes(self, cfg, reference):
        """A corrupted stack pointer derails the next push/pop/ret.

        A single flip can be healed when the epilogue's ``mov esp, ebp``
        overwrites it before any stack access (a genuine masking path),
        so several injection times are sampled: at least one must crash
        or hang."""
        outcomes = []
        for frac in (3, 5, 7):
            spec = FaultSpec(
                Region.REGULAR_REG, 1,
                time_blocks=reference.blocks_per_rank[1] * frac // 10,
                bit=28, reg_index=4,
            )
            m, record, _ = run_with_fault(wavetoy, cfg, spec, reference=reference)
            assert record.delivered
            outcomes.append(m)
        assert any(
            m in (Manifestation.CRASH, Manifestation.HANG) for m in outcomes
        )

    def test_fp_inert_special_register_is_benign(self, cfg, reference):
        """FIP holds the last FP instruction pointer; nothing consumes
        it, so flips there never manifest (section 6.1.1)."""
        spec = FaultSpec(
            Region.FP_REG, 0,
            time_blocks=reference.blocks_per_rank[0] // 2,
            bit=9, fp_target="fip",
        )
        m, record, _ = run_with_fault(wavetoy, cfg, spec, reference=reference)
        assert record.delivered
        assert m is Manifestation.CORRECT


class TestMemoryScenarios:
    def test_text_flip_before_execution_can_sigill(self, cfg, reference):
        """Flip the opcode byte of the step kernel's first instruction:
        the next fetch decodes a corrupted word."""
        from repro.mpi.simulator import Job

        probe = Job(wavetoy(), cfg)
        addr = probe.images[0].addr_of("wt_step")
        spec = FaultSpec(
            Region.TEXT, 0, time_blocks=10, bit=7, address=addr
        )
        m, record, result = run_with_fault(wavetoy, cfg, spec, reference=reference)
        assert record.delivered
        assert m in (Manifestation.CRASH, Manifestation.HANG, Manifestation.INCORRECT)

    def test_cold_text_flip_is_benign(self, cfg, reference):
        """Flips in never-executed padding code cannot manifest."""
        from repro.mpi.simulator import Job

        probe = Job(wavetoy(), cfg)
        addr = probe.images[0].addr_of("wt_io_cold") + 100
        spec = FaultSpec(Region.TEXT, 0, time_blocks=10, bit=3, address=addr)
        m, record, _ = run_with_fault(wavetoy, cfg, spec, reference=reference)
        assert record.delivered
        assert m is Manifestation.CORRECT

    def test_unread_bss_flip_is_benign(self, cfg, reference):
        from repro.mpi.simulator import Job

        probe = Job(wavetoy(), cfg)
        addr = probe.images[0].addr_of("wt_workspace") + 64
        spec = FaultSpec(Region.BSS, 0, time_blocks=10, bit=3, address=addr)
        m, record, _ = run_with_fault(wavetoy, cfg, spec, reference=reference)
        assert record.delivered
        assert m is Manifestation.CORRECT

    def test_solver_constant_flip_changes_output(self, cfg, reference):
        """The r^2 coefficient is loaded every row: a high-exponent-bit
        flip destabilises the integration."""
        from repro.mpi.simulator import Job

        probe = Job(wavetoy(), cfg)
        addr = probe.images[0].addr_of("wt_r2c") + 7  # exponent byte
        spec = FaultSpec(Region.DATA, 0, time_blocks=10, bit=5, address=addr)
        m, record, _ = run_with_fault(wavetoy, cfg, spec, reference=reference)
        assert record.delivered
        assert m is not Manifestation.CORRECT


class TestStackScenarios:
    def test_stack_faults_sampleable_every_time(self, cfg, reference):
        """Stack injection must always find live user frames."""
        delivered = 0
        for i in range(6):
            spec = FaultSpec(
                Region.STACK, i % SMALL_NPROCS,
                time_blocks=1 + (reference.blocks_per_rank[0] * i) // 6,
                bit=i % 8,
            )
            _, record, _ = run_with_fault(
                wavetoy, cfg, spec, reference=reference, seed=i
            )
            delivered += record.delivered
        assert delivered == 6

    def test_descriptor_flip_can_trigger_mpi_detected(self, cfg, reference):
        """Deterministically corrupt an MPI-call descriptor in the stack
        locals: the next send sees an invalid rank and the registered
        error handler fires (the paper's stack->MPI-Detected pathway)."""
        from repro.injection.outcomes import classify
        from repro.mpi.simulator import Job

        job = Job(wavetoy(), cfg)

        def corrupt(j):
            # Flip a high bit in rank 1's "up" descriptor (4 bytes before
            # "down"); the next halo exchange reads it back as a huge
            # rank and MPI argument checking rejects it.
            vm = j.vms[1]

            def hook(v):
                image = v.image
                # locals frame is the outermost user frame
                frames = list(image.stack.walk_frames())
                ebp, _ = frames[-1]
                # named fields sit just below EBP; "up" is field index 6
                # of 8 -> offset 4*(8-6) = 8 below EBP
                v.image.stack_segment.flip_bit(ebp - 8, 6)

            vm.schedule_hook(5, hook)

        job.pre_run_hooks.append(corrupt)
        result = job.run()
        m = classify(result, reference)
        assert m is Manifestation.MPI_DETECTED


class TestHeapScenarios:
    def test_hot_array_exponent_flip_manifests(self, cfg, reference):
        """Force the scan to land in u_curr by seeding: across several
        seeds at least one heap fault must manifest (the arrays are hot),
        and at least one must be masked (the cold buffer dominates)."""
        outcomes = []
        for i in range(10):
            spec = FaultSpec(
                Region.HEAP, 0,
                time_blocks=1 + (reference.blocks_per_rank[0] * i) // 10,
                bit=7,
            )
            m, record, _ = run_with_fault(
                wavetoy, cfg, spec, reference=reference, seed=100 + i
            )
            if record.delivered:
                outcomes.append(m)
        assert outcomes.count(Manifestation.CORRECT) > 0
