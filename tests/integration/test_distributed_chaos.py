"""Chaos test: a worker dies mid-batch; the campaign doesn't notice.

One coordinator (in-process, so the test can watch the lease book) and
two real ``python -m repro campaign work`` subprocesses.  The victim
worker leases a batch and parks on the :data:`HOLD_ENV` test hook; the
test SIGKILLs it while the lease is outstanding.  The coordinator must
requeue the orphaned batch at its deadline, the surviving worker must
drain everything, and the final tallies and store must be byte-identical
to a serial local run of the same campaign - fault tolerance with zero
statistical footprint.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.engine.coordination import (
    HOLD_ENV,
    CampaignCoordinator,
    CoordinatorService,
)
from repro.injection.campaign import Campaign
from repro.injection.faults import Region
from repro.observability.serve import TelemetryHub, TelemetryServer
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY

REGIONS = (Region.MESSAGE, Region.STACK)
N = 4
LEASE_TIMEOUT = 3.0
DEADLINE = 180.0

SMALL_PARAMS = ",".join(f"{k}={v}" for k, v in SMALL_WAVETOY.items())


def worker_argv(port, name):
    return [
        sys.executable, "-m", "repro", "campaign", "work",
        f"127.0.0.1:{port}", "--name", name, "--poll-interval", "0.2",
    ]


def worker_env(**extra):
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(repo_src)
    env.update(extra)
    return env


def wait_until(predicate, timeout=DEADLINE, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.mark.slow
def test_sigkilled_worker_batch_is_requeued_and_tallies_match(tmp_path):
    campaign = Campaign.from_registry(
        "wavetoy", nprocs=SMALL_NPROCS, app_params=SMALL_WAVETOY
    )
    reference = campaign.run(
        REGIONS, N, store=tmp_path / "serial.jsonl", checkpoint_stride=None
    )

    engine = Campaign.from_registry(
        "wavetoy", nprocs=SMALL_NPROCS, app_params=SMALL_WAVETOY
    ).engine(telemetry=TelemetryHub(), store=tmp_path / "dist.jsonl")
    coordinator = CampaignCoordinator(
        engine, REGIONS, N, batch_size=2, lease_timeout=LEASE_TIMEOUT
    )
    server = TelemetryServer(CoordinatorService(coordinator)).start()
    victim = survivor = None
    try:
        # The victim parks (holding its lease) before executing anything.
        victim = subprocess.Popen(
            worker_argv(server.port, "victim"),
            env=worker_env(**{HOLD_ENV: str(DEADLINE)}),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

        def victim_holds_lease():
            with coordinator.lock:
                snap = coordinator.book.snapshot(coordinator.clock())
            return any(l["worker"] == "victim" for l in snap["leases"])

        assert wait_until(victim_holds_lease), "victim never leased a batch"
        victim.send_signal(signal.SIGKILL)
        assert victim.wait(timeout=30) == -signal.SIGKILL

        survivor = subprocess.Popen(
            worker_argv(server.port, "survivor"),
            env=worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        assert wait_until(lambda: coordinator.done), (
            "campaign never completed: "
            f"{coordinator.book.snapshot(coordinator.clock())}"
        )
        result = coordinator.finalize()
        _, err = survivor.communicate(timeout=60)
        assert survivor.returncode == 0, err.decode()
    finally:
        for proc in (victim, survivor):
            if proc is not None and proc.poll() is None:
                proc.kill()
        server.stop()
        engine.close()

    # The orphaned lease was requeued, not lost.
    assert coordinator.book.requeues >= 1

    # Zero statistical footprint: tallies identical to the serial run...
    for region in REGIONS:
        a, b = reference.regions[region], result.regions[region]
        assert dict(a.tally.counts) == dict(b.tally.counts)
        assert a.delivered == b.delivered
        assert (b.resumed, b.pruned) == (0, 0)

    # ...and the stores hold byte-identical record sets.
    serial = sorted(
        (tmp_path / "serial.jsonl").read_text().splitlines()
    )
    distributed = sorted(
        (tmp_path / "dist.jsonl").read_text().splitlines()
    )
    assert serial == distributed

    # Every record is a well-formed sorted-keys JSON line (the exact
    # payload the SQLite backend stores too).
    for line in distributed:
        obj = json.loads(line)
        assert line == json.dumps(obj, sort_keys=True)
