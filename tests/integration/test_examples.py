"""Smoke tests: every shipped example must run to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv: list[str] | None = None):
    saved = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved


class TestExamples:
    def test_custom_app_injection(self, capsys):
        run_example("custom_app_injection.py")
        out = capsys.readouterr().out
        assert "pi = 3.14159" in out
        assert "fault armed" in out

    def test_reliability_asciq(self, capsys):
        run_example("reliability_asciq.py")
        out = capsys.readouterr().out
        assert "1,650" in out
        assert "SECDED" in out

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "one injection per region" in out
        assert out.count("->") >= 8

    @pytest.mark.slow
    def test_fault_campaign_small(self, capsys):
        run_example("fault_campaign.py", ["wavetoy", "3"])
        out = capsys.readouterr().out
        assert "Fault Injection Results (wavetoy)" in out
        assert "Regular Reg." in out

    @pytest.mark.slow
    def test_working_set_analysis_small(self, capsys):
        run_example("working_set_analysis.py", ["3"])
        out = capsys.readouterr().out
        assert "Memory trace of wavetoy" in out
        assert "consistent with the paper" in out

    @pytest.mark.slow
    def test_detector_study_small(self, capsys):
        run_example("detector_study.py", ["6"])
        out = capsys.readouterr().out
        assert "checksum" in out
        assert "detector fires" in out
