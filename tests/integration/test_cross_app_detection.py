"""Cross-application detection scenarios: each app's characteristic
detector, driven end-to-end through the injector."""

import pytest

from repro.harness.runner import run_fault_free, run_with_fault
from repro.injection.faults import FaultSpec, Region
from repro.injection.outcomes import Manifestation
from repro.mpi.simulator import Job, JobConfig, JobStatus
from tests.conftest import SMALL_CLIMATE, SMALL_MOLDYN, SMALL_NPROCS


def moldyn():
    from repro.apps import MoldynApp

    return MoldynApp(**SMALL_MOLDYN)


def climate():
    from repro.apps import ClimateApp

    return ClimateApp(**SMALL_CLIMATE)


@pytest.fixture(scope="module")
def cfg():
    return JobConfig(nprocs=SMALL_NPROCS)


class TestMoldynDetectors:
    def test_nan_check_catches_velocity_corruption(self, cfg):
        """A huge exponent flip in the velocity array drives the kinetic
        energy to Inf/NaN; moldyn's per-step NaN check aborts."""
        ref = run_fault_free(moldyn, cfg)
        job = Job(moldyn(), cfg)

        def corrupt(j):
            vm = j.vms[1]

            def hook(v):
                # chunk order: cold, x, v, f, ...
                chunks = v.image.heap.user_chunks()
                v_chunk = chunks[2]
                v.image.heap_segment.flip_bit(v_chunk.addr + 40 * 8 + 7, 6)

            vm.schedule_hook(ref.blocks_per_rank[1] // 2, hook)

        job.pre_run_hooks.append(corrupt)
        result = job.run()
        assert result.status is JobStatus.APP_DETECTED
        assert "NaN" in result.detail or "bound" in result.detail

    def test_register_fault_can_crash_moldyn(self, cfg):
        ref = run_fault_free(moldyn, cfg)
        spec = FaultSpec(
            Region.REGULAR_REG, 2,
            time_blocks=ref.blocks_per_rank[2] // 2, bit=27, reg_index=4,
        )
        m, record, _ = run_with_fault(moldyn, cfg, spec, reference=ref)
        assert record.delivered
        assert m in (Manifestation.CRASH, Manifestation.HANG)


class TestClimateDetectors:
    def test_moisture_check_catches_q_corruption(self, cfg):
        """Flipping the sign bit of a moisture cell drives it below the
        minimum threshold: the QNEG check aborts (the CAM mechanism)."""
        ref = run_fault_free(climate, cfg)
        job = Job(climate(), cfg)

        def corrupt(j):
            vm = j.vms[1]

            def hook(v):
                q = v.image.addr_of("cam_Q")
                v.image.bss.flip_bit(q + 5 * 8 + 7, 7)  # sign bit

            vm.schedule_hook(ref.blocks_per_rank[1] // 2, hook)

        job.pre_run_hooks.append(corrupt)
        result = job.run()
        assert result.status is JobStatus.APP_DETECTED
        assert "moisture" in result.detail or "QNEG" in result.detail

    def test_temperature_corruption_is_silent(self, cfg):
        """A modest T perturbation passes the NaN check and lands in the
        binary history output: Incorrect Output, CAM's dominant silent
        mode."""
        ref = run_fault_free(climate, cfg)
        job = Job(climate(), cfg)

        def corrupt(j):
            vm = j.vms[2]

            def hook(v):
                t = v.image.addr_of("cam_T")
                v.image.bss.flip_bit(t + 9 * 8 + 5, 3)  # mid-mantissa

            vm.schedule_hook(ref.blocks_per_rank[2] // 2, hook)

        job.pre_run_hooks.append(corrupt)
        result = job.run()
        assert result.status is JobStatus.COMPLETED
        assert result.outputs != ref.outputs  # silent data corruption

    def test_fp_stack_fault_during_physics(self, cfg):
        ref = run_fault_free(climate, cfg)
        outcomes = set()
        for i in range(4):
            spec = FaultSpec(
                Region.FP_REG, 1,
                time_blocks=1 + (ref.blocks_per_rank[1] * i) // 4,
                bit=72, fp_target="st0",
            )
            m, record, _ = run_with_fault(
                climate, cfg, spec, reference=ref, seed=i
            )
            outcomes.add(m)
        assert Manifestation.CORRECT in outcomes or len(outcomes) > 0
