"""Unit tests for the Channel layer."""

from repro.mpi.channel import HEADER_SIZE, ChannelEndpoint


def make_packet(payload: bytes) -> bytes:
    return bytes(HEADER_SIZE) + payload


class TestQueue:
    def test_fifo_order(self):
        ep = ChannelEndpoint(0)
        ep.push(make_packet(b"a"))
        ep.push(make_packet(b"b"))
        assert bytes(ep.recv())[-1:] == b"a"
        assert bytes(ep.recv())[-1:] == b"b"

    def test_empty_returns_none(self):
        assert ChannelEndpoint(0).recv() is None

    def test_pending(self):
        ep = ChannelEndpoint(0)
        assert ep.pending() == 0
        ep.push(make_packet(b""))
        assert ep.pending() == 1


class TestCounters:
    def test_bytes_received(self):
        ep = ChannelEndpoint(0)
        ep.push(make_packet(b"abc"))
        ep.recv()
        assert ep.bytes_received == HEADER_SIZE + 3

    def test_control_vs_data_classification(self):
        ep = ChannelEndpoint(0)
        ep.push(make_packet(b""))
        ep.push(make_packet(b"payload"))
        ep.recv()
        ep.recv()
        assert ep.stats.control_packets == 1
        assert ep.stats.data_packets == 1
        assert ep.stats.header_bytes == 2 * HEADER_SIZE
        assert ep.stats.payload_bytes == 7

    def test_header_fraction(self):
        ep = ChannelEndpoint(0)
        ep.push(make_packet(b"x" * HEADER_SIZE))  # 50/50 split
        ep.recv()
        assert ep.stats.header_fraction() == 0.5

    def test_drop_accounting(self):
        ep = ChannelEndpoint(0)
        ep.note_drop()
        assert ep.stats.dropped_packets == 1


class TestInjectionHook:
    def test_hook_sees_offset_and_can_corrupt(self):
        ep = ChannelEndpoint(0)
        seen = []

        def hook(packet, start):
            seen.append((bytes(packet), start))
            packet[0] ^= 0xFF
            return packet

        ep.inject_hook = hook
        ep.push(make_packet(b"x"))
        ep.push(make_packet(b"y"))
        p1 = ep.recv()
        p2 = ep.recv()
        assert p1[0] == 0xFF  # corrupted header byte
        assert seen[0][1] == 0
        assert seen[1][1] == HEADER_SIZE + 1  # counter advanced

    def test_header_size_in_paper_range(self):
        # "both have 32-64 bytes of header"
        assert 32 <= HEADER_SIZE <= 64
