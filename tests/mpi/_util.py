"""Helpers for MPI runtime tests: a minimal application wrapper."""

from __future__ import annotations

from repro.cpu.vm import VM
from repro.memory.process import ProcessImage
from repro.memory.symbols import Linker
from repro.mpi.library import add_mpi_library
from repro.mpi.simulator import Job, JobConfig


class GenericApp:
    """Wraps a ``main(ctx) -> generator`` function as an application."""

    name = "generic"

    def __init__(self, main_fn, *, bss_size: int = 1024, heap_size: int = 1 << 16):
        self._main = main_fn
        self.bss_size = bss_size
        self.heap_size = heap_size

    def build_process(self, rank: int, nprocs: int, config: JobConfig):
        linker = Linker()
        linker.add_text("app_main", b"\x01" * 64)
        linker.add_bss("buf", self.bss_size)
        add_mpi_library(linker, text_scale=0.05, data_scale=0.05)
        image = ProcessImage.from_linker(
            linker, rank=rank, heap_size=self.heap_size
        )
        return image, VM(image)

    def main(self, ctx):
        return self._main(ctx)


def run_app(main_fn, nprocs: int = 4, **cfg_kwargs):
    """Run a generator main over ``nprocs`` ranks; returns (result, job)."""
    job = Job(GenericApp(main_fn), JobConfig(nprocs=nprocs, **cfg_kwargs))
    return job.run(), job


def buf_addr(ctx) -> int:
    return ctx.image.addr_of("buf")
