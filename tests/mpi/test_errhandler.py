"""Error-handler semantics: the paper's MPI-Detected pathway."""

import pytest

from repro.errors import MPIAbort, MPIError
from repro.mpi.datatypes import MPI_DOUBLE, MPI_INT
from repro.mpi.errhandler import (
    MPI_ERRORS_ARE_FATAL,
    MPI_ERRORS_RETURN,
    ErrhandlerSlot,
)
from repro.mpi.simulator import JobStatus
from tests.mpi._util import buf_addr, run_app


class TestSlot:
    def test_default_is_fatal(self):
        slot = ErrhandlerSlot()
        with pytest.raises(MPIAbort):
            slot.invoke(None, MPIError("MPI_ERR_RANK", "bad"))
        assert slot.user_invocations == 0

    def test_errors_return(self):
        slot = ErrhandlerSlot()
        slot.set(MPI_ERRORS_RETURN)
        with pytest.raises(MPIError):
            slot.invoke(None, MPIError("MPI_ERR_TAG", "bad"))
        assert not slot.is_user_handler

    def test_user_handler_counted(self):
        slot = ErrhandlerSlot()
        calls = []
        slot.set(lambda comm, err: calls.append(err))
        slot.invoke("comm", MPIError("MPI_ERR_COUNT", "bad"))
        assert slot.user_invocations == 1
        assert slot.is_user_handler
        assert calls[0].mpi_class == "MPI_ERR_COUNT"


class TestArgumentChecks:
    """Each invalid argument must reach the registered handler - the
    *only* path the paper found to trigger it in MPICH/LAM/LA-MPI."""

    @staticmethod
    def _app(bad_call):
        def main(ctx):
            detected = []
            ctx.comm.set_errhandler(
                lambda comm, err: (_ for _ in ()).throw(
                    MPIAbort(f"user handler: {err}")
                )
            )
            if ctx.rank == 0:
                yield from bad_call(ctx)
            else:
                yield None

        return main

    @pytest.mark.parametrize(
        "bad_call,detail",
        [
            (
                lambda ctx: ctx.comm.send(buf_addr(ctx), 1, MPI_INT, 99, 1),
                "rank",
            ),
            (
                lambda ctx: ctx.comm.send(buf_addr(ctx), -5, MPI_INT, 0, 1),
                "count",
            ),
            (
                lambda ctx: ctx.comm.send(buf_addr(ctx), 1, MPI_INT, 0, -3),
                "tag",
            ),
            (
                lambda ctx: ctx.comm.send(buf_addr(ctx), 1, MPI_INT, 0, 40000),
                "tag above TAG_UB",
            ),
            (
                lambda ctx: ctx.comm.send(0xDEAD0000, 4, MPI_DOUBLE, 0, 1),
                "buffer",
            ),
            (
                lambda ctx: ctx.comm.send(buf_addr(ctx), 1, "not a type", 0, 1),
                "datatype",
            ),
            (
                lambda ctx: ctx.comm.bcast(buf_addr(ctx), 1, MPI_INT, 99),
                "root",
            ),
            (
                lambda ctx: ctx.comm.recv(buf_addr(ctx), 1, MPI_INT, 77, 1),
                "source",
            ),
        ],
    )
    def test_bad_argument_invokes_user_handler(self, bad_call, detail):
        result, job = run_app(self._app(bad_call), nprocs=2)
        assert result.status is JobStatus.MPI_DETECTED, detail
        assert job.comms[0].errhandler.user_invocations == 1

    def test_without_user_handler_its_a_crash(self):
        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.send(buf_addr(ctx), 1, MPI_INT, 99, 1)
            else:
                yield None

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.CRASHED
        assert any("p4_error" in line for line in result.stderr)

    def test_wildcards_pass_argument_checks(self):
        from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG

        def main(ctx):
            buf = buf_addr(ctx)
            if ctx.rank == 0:
                yield from ctx.comm.send(buf, 1, MPI_INT, 1, 1)
            else:
                yield from ctx.comm.recv(buf, 1, MPI_INT, ANY_SOURCE, ANY_TAG)

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED
