"""Unit tests for MPI datatypes and reduce ops."""

import numpy as np
import pytest

from repro.mpi.datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    MPI_BYTE,
    MPI_DOUBLE,
    MPI_INT,
    MPI_MAX,
    MPI_MIN,
    MPI_PROD,
    MPI_SUM,
    PREDEFINED_DATATYPES,
    PREDEFINED_OPS,
    TAG_UB,
)


class TestDatatypes:
    def test_sizes(self):
        assert MPI_DOUBLE.size == 8
        assert MPI_INT.size == 4
        assert MPI_BYTE.size == 1

    def test_roundtrip(self):
        values = np.array([1.5, -2.5, 3.0])
        raw = MPI_DOUBLE.to_bytes(values)
        assert len(raw) == 24
        np.testing.assert_array_equal(MPI_DOUBLE.to_numpy(raw), values)

    def test_int_roundtrip(self):
        values = np.array([-1, 0, 2**31 - 1], dtype=np.int32)
        np.testing.assert_array_equal(
            MPI_INT.to_numpy(MPI_INT.to_bytes(values)), values
        )

    def test_to_numpy_returns_copy(self):
        raw = MPI_DOUBLE.to_bytes(np.array([1.0]))
        arr = MPI_DOUBLE.to_numpy(raw)
        arr[0] = 9.0  # must not raise (writable copy)

    def test_repr(self):
        assert repr(MPI_DOUBLE) == "MPI_DOUBLE"

    def test_predefined_list(self):
        assert MPI_DOUBLE in PREDEFINED_DATATYPES
        assert len(PREDEFINED_DATATYPES) == 6


class TestReduceOps:
    def test_ops(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 2.0])
        np.testing.assert_array_equal(MPI_SUM(a, b), [4.0, 7.0])
        np.testing.assert_array_equal(MPI_PROD(a, b), [3.0, 10.0])
        np.testing.assert_array_equal(MPI_MIN(a, b), [1.0, 2.0])
        np.testing.assert_array_equal(MPI_MAX(a, b), [3.0, 5.0])

    def test_nan_propagates_silently(self):
        a = np.array([np.nan])
        out = MPI_SUM(a, np.array([1.0]))
        assert np.isnan(out[0])

    def test_predefined(self):
        assert set(PREDEFINED_OPS) == {MPI_SUM, MPI_PROD, MPI_MIN, MPI_MAX}


class TestConstants:
    def test_wildcards(self):
        assert ANY_SOURCE == -1
        assert ANY_TAG == -1

    def test_tag_ub(self):
        assert TAG_UB == 32767
