"""Traffic measurement (Table 1 machinery)."""

from repro.mpi.channel import HEADER_SIZE
from repro.mpi.datatypes import MPI_DOUBLE
from repro.mpi.traffic import job_traffic, rank_traffic, summarize
from tests.mpi._util import buf_addr, run_app


def exchange_app(payload_doubles: int):
    def main(ctx):
        buf = buf_addr(ctx)
        if ctx.rank == 0:
            yield from ctx.comm.send(buf, payload_doubles, MPI_DOUBLE, 1, 1)
        else:
            yield from ctx.comm.recv(buf, payload_doubles, MPI_DOUBLE, 0, 1)

    return main


class TestRankTraffic:
    def test_header_user_split(self):
        _, job = run_app(exchange_app(10), nprocs=2)
        t = rank_traffic(job, 1)
        assert t.header_bytes == HEADER_SIZE
        assert t.payload_bytes == 80
        assert abs(t.header_percent + t.user_percent - 100.0) < 1e-9
        assert t.messages_data == 1

    def test_sender_receives_nothing(self):
        _, job = run_app(exchange_app(10), nprocs=2)
        t = rank_traffic(job, 0)
        assert t.total_bytes == 0
        assert t.header_percent == 0.0

    def test_control_message_percent(self):
        def main(ctx):
            yield from ctx.comm.barrier()

        _, job = run_app(main, nprocs=2)
        t = rank_traffic(job, 0)
        assert t.control_message_percent == 100.0


class TestSummary:
    def test_summarize_ranges(self):
        _, job = run_app(exchange_app(4), nprocs=2)
        s = summarize(job)
        assert s.min_bytes == 0
        assert s.max_bytes == HEADER_SIZE + 32
        assert s.mean_bytes == (HEADER_SIZE + 32) / 2

    def test_job_traffic_covers_all_ranks(self):
        _, job = run_app(exchange_app(1), nprocs=2)
        assert [t.rank for t in job_traffic(job)] == [0, 1]
