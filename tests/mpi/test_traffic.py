"""Traffic measurement (Table 1 machinery)."""

import pytest

from repro.mpi.channel import HEADER_SIZE, ChannelStats
from repro.mpi.datatypes import MPI_DOUBLE
from repro.mpi.traffic import RankTraffic, job_traffic, rank_traffic, summarize
from tests.mpi._util import buf_addr, run_app


def exchange_app(payload_doubles: int):
    def main(ctx):
        buf = buf_addr(ctx)
        if ctx.rank == 0:
            yield from ctx.comm.send(buf, payload_doubles, MPI_DOUBLE, 1, 1)
        else:
            yield from ctx.comm.recv(buf, payload_doubles, MPI_DOUBLE, 0, 1)

    return main


class TestRankTraffic:
    def test_header_user_split(self):
        _, job = run_app(exchange_app(10), nprocs=2)
        t = rank_traffic(job, 1)
        assert t.header_bytes == HEADER_SIZE
        assert t.payload_bytes == 80
        assert abs(t.header_percent + t.user_percent - 100.0) < 1e-9
        assert t.messages_data == 1

    def test_sender_receives_nothing(self):
        _, job = run_app(exchange_app(10), nprocs=2)
        t = rank_traffic(job, 0)
        assert t.total_bytes == 0
        assert t.header_percent == 0.0

    def test_control_message_percent(self):
        def main(ctx):
            yield from ctx.comm.barrier()

        _, job = run_app(main, nprocs=2)
        t = rank_traffic(job, 0)
        assert t.control_message_percent == 100.0

    def test_percentages_partition_the_volume(self):
        _, job = run_app(exchange_app(25), nprocs=2)
        t = rank_traffic(job, 1)
        assert t.header_percent == pytest.approx(
            100.0 * HEADER_SIZE / (HEADER_SIZE + 200)
        )
        assert t.user_percent == pytest.approx(100.0 * 200 / (HEADER_SIZE + 200))


def _empty_traffic(rank: int = 0) -> RankTraffic:
    return RankTraffic(
        rank=rank,
        total_bytes=0,
        header_bytes=0,
        payload_bytes=0,
        packets=0,
        control_packets=0,
        data_packets=0,
        messages_control=0,
        messages_data=0,
        dropped_packets=0,
    )


class TestZeroVolumeEdgeCases:
    """Divide-by-zero guards: silent ranks and empty jobs."""

    def test_zero_byte_rank_percentages_are_zero(self):
        t = _empty_traffic()
        assert t.header_percent == 0.0
        assert t.user_percent == 0.0
        assert t.control_message_percent == 0.0

    def test_silent_job_summary(self):
        def main(ctx):
            yield  # no communication at all

        _, job = run_app(main, nprocs=2)
        s = summarize(job)
        assert s.mean_bytes == 0.0
        assert s.min_bytes == s.max_bytes == 0
        assert s.mean_header_percent == 0.0
        assert s.mean_user_percent == 0.0
        assert s.mean_control_message_percent == 0.0

    def test_header_only_rank_is_all_header(self):
        def main(ctx):
            yield from ctx.comm.barrier()

        _, job = run_app(main, nprocs=2)
        t = rank_traffic(job, 0)
        assert t.payload_bytes == 0
        assert t.header_percent == 100.0
        assert t.user_percent == 0.0


class TestChannelStats:
    def test_empty_stats_header_fraction_is_zero(self):
        stats = ChannelStats()
        assert stats.total_bytes == 0
        assert stats.header_fraction() == 0.0

    def test_header_fraction_tracks_accounting(self):
        stats = ChannelStats(header_bytes=HEADER_SIZE, payload_bytes=HEADER_SIZE)
        assert stats.header_fraction() == 0.5
        assert stats.total_bytes == 2 * HEADER_SIZE

    def test_header_only_stream(self):
        stats = ChannelStats(header_bytes=3 * HEADER_SIZE)
        assert stats.header_fraction() == 1.0

    def test_live_endpoint_matches_rank_traffic(self):
        _, job = run_app(exchange_app(10), nprocs=2)
        stats = job.endpoints[1].stats
        t = rank_traffic(job, 1)
        assert stats.header_fraction() == pytest.approx(t.header_percent / 100.0)


class TestSummary:
    def test_summarize_ranges(self):
        _, job = run_app(exchange_app(4), nprocs=2)
        s = summarize(job)
        assert s.min_bytes == 0
        assert s.max_bytes == HEADER_SIZE + 32
        assert s.mean_bytes == (HEADER_SIZE + 32) / 2

    def test_job_traffic_covers_all_ranks(self):
        _, job = run_app(exchange_app(1), nprocs=2)
        assert [t.rank for t in job_traffic(job)] == [0, 1]
