"""MPI_Alltoall and MPI_Probe/Iprobe."""

import numpy as np
import pytest

from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, MPI_DOUBLE, MPI_INT
from repro.mpi.simulator import JobStatus
from tests.mpi._util import buf_addr, run_app


class TestAlltoall:
    @pytest.mark.parametrize("nprocs", [2, 3, 5, 8])
    def test_transpose_semantics(self, nprocs):
        """recv[j] on rank i must equal send[i] of rank j."""

        def main(ctx):
            n = ctx.nprocs
            send = ctx.image.heap.malloc(n * 8)
            recv = ctx.image.heap.malloc(n * 8)
            sview = ctx.image.heap_segment.view_f64(send, n)
            sview[:] = [100.0 * ctx.rank + j for j in range(n)]
            yield from ctx.comm.alltoall(send, 1, MPI_DOUBLE, recv)
            rview = ctx.image.heap_segment.view_f64(recv, n)
            np.testing.assert_array_equal(
                rview, [100.0 * j + ctx.rank for j in range(n)]
            )

        result, _ = run_app(main, nprocs=nprocs)
        assert result.status is JobStatus.COMPLETED, result.detail

    def test_multi_element_blocks(self):
        def main(ctx):
            n, c = ctx.nprocs, 4
            send = ctx.image.heap.malloc(n * c * 8)
            recv = ctx.image.heap.malloc(n * c * 8)
            sview = ctx.image.heap_segment.view_f64(send, n * c)
            sview[:] = np.arange(n * c) + 1000 * ctx.rank
            yield from ctx.comm.alltoall(send, c, MPI_DOUBLE, recv)
            rview = ctx.image.heap_segment.view_f64(recv, n * c)
            for j in range(n):
                np.testing.assert_array_equal(
                    rview[j * c : (j + 1) * c],
                    np.arange(ctx.rank * c, (ctx.rank + 1) * c) + 1000 * j,
                )

        result, _ = run_app(main, nprocs=4)
        assert result.status is JobStatus.COMPLETED, result.detail

    def test_single_rank_copies(self):
        def main(ctx):
            send = ctx.image.heap.malloc(8)
            recv = ctx.image.heap.malloc(8)
            ctx.image.heap_segment.write_f64(send, 9.0)
            yield from ctx.comm.alltoall(send, 1, MPI_DOUBLE, recv)
            assert ctx.image.heap_segment.read_f64(recv) == 9.0

        result, _ = run_app(main, nprocs=1)
        assert result.status is JobStatus.COMPLETED


class TestProbe:
    def test_iprobe_sees_pending_without_consuming(self):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            if ctx.rank == 0:
                sp.store_i32(buf, 5)
                yield from ctx.comm.send(buf, 1, MPI_INT, 1, 7)
            else:
                while ctx.comm.iprobe(0, 7) is None:
                    yield None
                st = ctx.comm.iprobe(0, 7)
                assert st.source == 0 and st.tag == 7
                assert st.get_count(MPI_INT) == 1
                # still receivable afterwards
                yield from ctx.comm.recv(buf, 1, MPI_INT, 0, 7)
                assert sp.load_i32(buf) == 5

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED, result.detail

    def test_iprobe_returns_none_when_empty(self):
        def main(ctx):
            assert ctx.comm.iprobe(ANY_SOURCE, ANY_TAG) is None
            yield None

        result, _ = run_app(main, nprocs=1)
        assert result.status is JobStatus.COMPLETED

    def test_blocking_probe_then_sized_receive(self):
        """The classic probe pattern: learn the size, then receive."""

        def main(ctx):
            sp = ctx.image.address_space
            if ctx.rank == 0:
                n = 13
                addr = ctx.image.heap.malloc(n * 8)
                ctx.image.heap_segment.view_f64(addr, n)[:] = 2.5
                yield from ctx.comm.send(addr, n, MPI_DOUBLE, 1, 3)
            else:
                st = yield from ctx.comm.probe(ANY_SOURCE, 3)
                n = st.get_count(MPI_DOUBLE)
                assert n == 13
                addr = ctx.image.heap.malloc(n * 8)
                yield from ctx.comm.recv(addr, n, MPI_DOUBLE, st.source, 3)
                assert ctx.image.heap_segment.read_f64(addr) == 2.5

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED, result.detail

    def test_probe_with_wrong_tag_never_matches(self):
        def main(ctx):
            buf = buf_addr(ctx)
            if ctx.rank == 0:
                yield from ctx.comm.send(buf, 1, MPI_INT, 1, 1)
            else:
                for _ in range(20):
                    yield None
                assert ctx.comm.iprobe(0, 99) is None
                assert ctx.comm.iprobe(0, 1) is not None
                yield from ctx.comm.recv(buf, 1, MPI_INT, 0, 1)

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED
