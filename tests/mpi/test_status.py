"""Status and Request objects."""

from repro.mpi.datatypes import MPI_DOUBLE, MPI_INT
from repro.mpi.status import CompletedRequest, Request, Status


class TestStatus:
    def test_get_count(self):
        st = Status(source=2, tag=7, count_bytes=24)
        assert st.get_count(MPI_DOUBLE) == 3
        assert st.get_count(MPI_INT) == 6

    def test_defaults(self):
        st = Status()
        assert st.source == -1 and st.tag == -1 and st.count_bytes == 0


class TestRequest:
    def test_lifecycle(self):
        req = Request(kind="recv")
        assert not req.ready()
        req.complete(Status(source=1, tag=2, count_bytes=8))
        assert req.ready()
        assert req.status.source == 1

    def test_complete_without_status_keeps_default(self):
        req = Request()
        req.complete()
        assert req.ready()
        assert req.status.source == -1

    def test_completed_request_born_ready(self):
        req = CompletedRequest()
        assert req.ready()
        assert req.kind == "send"
