"""Collective operation semantics."""

import numpy as np
import pytest

from repro.mpi.datatypes import MPI_DOUBLE, MPI_INT, MPI_MAX, MPI_MIN, MPI_SUM
from repro.mpi.simulator import JobStatus
from tests.mpi._util import buf_addr, run_app


class TestBarrier:
    def test_barrier_completes(self):
        def main(ctx):
            yield from ctx.comm.barrier()

        for n in (1, 2, 3, 5, 8):
            result, _ = run_app(main, nprocs=n)
            assert result.status is JobStatus.COMPLETED, n

    def test_barrier_orders_phases(self):
        def main(ctx):
            ctx.job.stdout.append(f"pre-{ctx.rank}")
            yield from ctx.comm.barrier()
            ctx.job.stdout.append(f"post-{ctx.rank}")

        result, _ = run_app(main, nprocs=4)
        pres = [i for i, l in enumerate(result.stdout) if l.startswith("pre")]
        posts = [i for i, l in enumerate(result.stdout) if l.startswith("post")]
        assert max(pres) < min(posts)

    def test_barrier_traffic_is_control(self):
        def main(ctx):
            yield from ctx.comm.barrier()

        _, job = run_app(main, nprocs=4)
        for ep in job.endpoints:
            assert ep.stats.data_packets == 0
            assert ep.stats.control_packets >= 2  # ceil(log2(4)) rounds


class TestBcast:
    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_bcast_from_any_root(self, root):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            if ctx.rank == root:
                sp.store_f64(buf, 6.5)
            yield from ctx.comm.bcast(buf, 1, MPI_DOUBLE, root)
            assert sp.load_f64(buf) == 6.5

        result, _ = run_app(main, nprocs=5)
        assert result.status is JobStatus.COMPLETED

    def test_bcast_array(self):
        def main(ctx):
            buf = buf_addr(ctx)
            view = ctx.image.bss.view_f64(buf, 16)
            if ctx.rank == 0:
                view[:] = np.arange(16.0)
            yield from ctx.comm.bcast(buf, 16, MPI_DOUBLE, 0)
            np.testing.assert_array_equal(view, np.arange(16.0))

        result, _ = run_app(main, nprocs=6)
        assert result.status is JobStatus.COMPLETED


class TestReduce:
    def test_reduce_sum(self):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            sp.store_f64(buf, float(ctx.rank + 1))
            yield from ctx.comm.reduce(buf, buf + 8, 1, MPI_DOUBLE, MPI_SUM, 0)
            if ctx.rank == 0:
                assert sp.load_f64(buf + 8) == 15.0  # 1+2+3+4+5

        result, _ = run_app(main, nprocs=5)
        assert result.status is JobStatus.COMPLETED

    @pytest.mark.parametrize("op,expected", [(MPI_MIN, 1.0), (MPI_MAX, 4.0)])
    def test_reduce_minmax(self, op, expected):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            sp.store_f64(buf, float(ctx.rank + 1))
            yield from ctx.comm.reduce(buf, buf + 8, 1, MPI_DOUBLE, op, 0)
            if ctx.rank == 0:
                assert sp.load_f64(buf + 8) == expected

        result, _ = run_app(main, nprocs=4)
        assert result.status is JobStatus.COMPLETED

    def test_allreduce(self):
        def main(ctx):
            buf = buf_addr(ctx)
            view = ctx.image.bss.view_f64(buf, 4)
            view[:] = ctx.rank
            yield from ctx.comm.allreduce(buf, buf + 32, 4, MPI_DOUBLE, MPI_SUM)
            out = ctx.image.bss.view_f64(buf + 32, 4)
            np.testing.assert_array_equal(out, np.full(4, sum(range(ctx.nprocs))))

        result, _ = run_app(main, nprocs=7)
        assert result.status is JobStatus.COMPLETED


class TestGatherScatter:
    def test_gather(self):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            sp.store_i32(buf, ctx.rank * 11)
            recv = buf + 64
            yield from ctx.comm.gather(buf, 1, MPI_INT, recv, 0)
            if ctx.rank == 0:
                for r in range(ctx.nprocs):
                    assert sp.load_i32(recv + 4 * r) == r * 11

        result, _ = run_app(main, nprocs=4)
        assert result.status is JobStatus.COMPLETED

    def test_scatter(self):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            send = buf + 64
            if ctx.rank == 0:
                for r in range(ctx.nprocs):
                    sp.store_i32(send + 4 * r, 100 + r)
            yield from ctx.comm.scatter(send, 1, MPI_INT, buf, 0)
            assert sp.load_i32(buf) == 100 + ctx.rank

        result, _ = run_app(main, nprocs=4)
        assert result.status is JobStatus.COMPLETED

    def test_allgather(self):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            sp.store_i32(buf, ctx.rank + 1)
            recv = buf + 64
            yield from ctx.comm.allgather(buf, 1, MPI_INT, recv)
            for r in range(ctx.nprocs):
                assert sp.load_i32(recv + 4 * r) == r + 1

        result, _ = run_app(main, nprocs=5)
        assert result.status is JobStatus.COMPLETED

    def test_gather_nonroot_root(self):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            sp.store_i32(buf, ctx.rank)
            recv = buf + 64
            yield from ctx.comm.gather(buf, 1, MPI_INT, recv, 2)
            if ctx.rank == 2:
                assert [sp.load_i32(recv + 4 * r) for r in range(4)] == [0, 1, 2, 3]

        result, _ = run_app(main, nprocs=4)
        assert result.status is JobStatus.COMPLETED
