"""Unit tests for the ADI layer: framing, matching, protocols."""

import pytest

from repro.mpi.adi import (
    ChannelProtocolError,
    MAGIC,
    MSG_CTS,
    MSG_EAGER,
    MSG_RTS,
    pack_header,
    parse_packet,
)
from repro.mpi.channel import HEADER_SIZE


class TestFraming:
    def test_roundtrip(self):
        pkt = pack_header(1, 2, 7, MSG_EAGER, 3, 99) + b"abc"
        msg = parse_packet(pkt)
        assert (msg.src, msg.dst, msg.tag) == (1, 2, 7)
        assert msg.mtype == MSG_EAGER
        assert msg.payload == b"abc"
        assert msg.seq == 99

    def test_header_is_channel_header_size(self):
        assert len(pack_header(0, 0, 0, MSG_EAGER, 0, 0)) == HEADER_SIZE

    def test_short_packet_fatal(self):
        with pytest.raises(ChannelProtocolError, match="short"):
            parse_packet(b"\x00" * 10)

    def test_bad_magic_fatal(self):
        pkt = bytearray(pack_header(0, 1, 0, MSG_EAGER, 0, 0))
        pkt[0] ^= 0x40
        with pytest.raises(ChannelProtocolError, match="magic"):
            parse_packet(pkt)

    def test_length_mismatch_fatal(self):
        pkt = pack_header(0, 1, 0, MSG_EAGER, 5, 0) + b"abc"
        with pytest.raises(ChannelProtocolError, match="length"):
            parse_packet(pkt)

    def test_unknown_type_fatal(self):
        pkt = pack_header(0, 1, 0, 200, 0, 0)
        with pytest.raises(ChannelProtocolError, match="type"):
            parse_packet(pkt)

    def test_padding_flips_benign(self):
        """Flips in the 16 padding bytes parse identically - part of why
        only ~40% of header flips corrupt execution."""
        pkt = bytearray(pack_header(3, 1, 7, MSG_EAGER, 2, 5) + b"hi")
        pkt[HEADER_SIZE - 1] ^= 0x80  # last pad byte
        msg = parse_packet(pkt)
        assert (msg.src, msg.dst, msg.tag, msg.payload) == (3, 1, 7, b"hi")

    def test_seq_flip_benign_for_eager(self):
        pkt = bytearray(pack_header(3, 1, 7, MSG_EAGER, 2, 5) + b"hi")
        pkt[24] ^= 0x01  # seq field
        msg = parse_packet(pkt)
        assert msg.payload == b"hi"
        assert msg.seq != 5


class TestSensitiveFieldFlips:
    def test_src_flip_changes_matching_identity(self):
        pkt = bytearray(pack_header(3, 1, 7, MSG_EAGER, 0, 0))
        pkt[4] ^= 0x04  # src 3 -> 7
        assert parse_packet(pkt).src == 7

    def test_type_flip_eager_to_rts(self):
        pkt = bytearray(pack_header(0, 1, 7, MSG_EAGER, 0, 0))
        pkt[16] ^= MSG_EAGER ^ MSG_RTS
        assert parse_packet(pkt).mtype == MSG_RTS

    def test_len_flip_detected(self):
        pkt = bytearray(pack_header(0, 1, 7, MSG_EAGER, 4, 0) + b"abcd")
        pkt[20] ^= 0x02  # payload_len 4 -> 6
        with pytest.raises(ChannelProtocolError):
            parse_packet(pkt)

    def test_magic_constant_value(self):
        assert MAGIC == 0x4849504D  # 'MPIH'
