"""Scheduler and failure-classification semantics of the Job simulator."""

import pytest

from repro.errors import AppAbort, SimSegfault
from repro.mpi.datatypes import MPI_INT
from repro.mpi.simulator import JobConfig, JobStatus
from tests.mpi._util import GenericApp, buf_addr, run_app
from repro.mpi.simulator import Job


class TestCompletion:
    def test_single_rank(self):
        def main(ctx):
            yield None

        result, _ = run_app(main, nprocs=1)
        assert result.status is JobStatus.COMPLETED

    def test_console_and_outputs_collected(self):
        def main(ctx):
            ctx.print("hello")
            if ctx.rank == 0:
                ctx.write_output("result", "data")
            yield None

        result, _ = run_app(main, nprocs=2)
        assert "[0] hello" in result.stdout
        assert result.outputs == {"result": "data"}

    def test_blocks_per_rank_reported(self):
        def main(ctx):
            ctx.image.clock.tick(ctx.rank * 10)
            yield None

        result, _ = run_app(main, nprocs=3)
        assert result.blocks_per_rank == [0, 10, 20]

    def test_determinism_across_runs(self):
        def main(ctx):
            ctx.print(f"draw {float(ctx.rng.random()):.6f}")
            yield from ctx.comm.barrier()

        r1, _ = run_app(main, nprocs=3, seed=5)
        r2, _ = run_app(main, nprocs=3, seed=5)
        assert r1.stdout == r2.stdout

    def test_seed_changes_rng(self):
        def main(ctx):
            ctx.print(f"{float(ctx.rng.random()):.9f}")
            yield None

        r1, _ = run_app(main, nprocs=1, seed=1)
        r2, _ = run_app(main, nprocs=1, seed=2)
        assert r1.stdout != r2.stdout


class TestFailureClassification:
    def test_sim_signal_is_crash_with_p4_error(self):
        def main(ctx):
            if ctx.rank == 1:
                raise SimSegfault("boom", rank=1)
            yield None

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.CRASHED
        assert result.faulting_rank == 1
        assert any("SIGSEGV" in l for l in result.stderr)
        assert any("p4_error" in l for l in result.stderr)

    def test_app_abort_is_app_detected(self):
        def main(ctx):
            yield None
            if ctx.rank == 0:
                raise AppAbort("NaN check", "energy is NaN")

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.APP_DETECTED
        assert any("ABORT" in l for l in result.stdout)

    def test_round_limit_is_hang(self):
        def main(ctx):
            while True:
                yield None

        job = Job(GenericApp(lambda ctx: main(ctx)), JobConfig(nprocs=2, round_limit=50))
        result = job.run()
        assert result.status is JobStatus.HUNG

    def test_block_limit_is_hang(self):
        def main(ctx):
            yield None
            while True:
                ctx.vm.clock.tick(10)
                ctx.vm.block_limit = 100
                from repro.errors import HangDetected

                if ctx.vm.clock.blocks > 100:
                    raise HangDetected("block budget exceeded")

        result, _ = run_app(main, nprocs=1)
        assert result.status is JobStatus.HUNG

    def test_unhandled_exception_is_crash_with_traceback(self):
        def main(ctx):
            yield None
            raise ValueError("corrupted value reached orchestration")

        result, _ = run_app(main, nprocs=1)
        assert result.status is JobStatus.CRASHED
        assert any("ValueError" in l for l in result.stderr)

    def test_crash_aborts_whole_job(self):
        """One rank's signal kills every MPI process (MPICH behaviour)."""
        progress = []

        def main(ctx):
            if ctx.rank == 0:
                raise SimSegfault("early death")
            for i in range(100):
                progress.append(ctx.rank)
                yield None

        result, _ = run_app(main, nprocs=3)
        assert result.status is JobStatus.CRASHED
        # Other ranks must not have run to completion (100 iterations).
        assert len(progress) < 10


class TestConfig:
    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            run_app(lambda ctx: iter(()), nprocs=0)

    def test_received_bytes_query(self):
        def main(ctx):
            buf = buf_addr(ctx)
            if ctx.rank == 0:
                yield from ctx.comm.send(buf, 4, MPI_INT, 1, 1)
            else:
                yield from ctx.comm.recv(buf, 4, MPI_INT, 0, 1)

        result, job = run_app(main, nprocs=2)
        assert job.received_bytes(1) > 0
        assert job.received_bytes(0) == 0
        assert job.total_blocks() == sum(result.blocks_per_rank)

    def test_pre_run_hooks_fire_once(self):
        calls = []

        def main(ctx):
            yield None

        job = Job(GenericApp(main), JobConfig(nprocs=1))
        job.pre_run_hooks.append(lambda j: calls.append(j))
        job.run()
        assert calls == [job]


class TestMpiAbort:
    def test_abort_kills_the_job(self):
        def main(ctx):
            yield None
            if ctx.rank == 1:
                ctx.comm.abort(errorcode=3)

        result, _ = run_app(main, nprocs=3)
        assert result.status is JobStatus.CRASHED
        assert any("MPI_Abort" in l for l in result.stderr)
        assert result.error.exit_code == 3

    def test_abort_without_user_handler_is_not_mpi_detected(self):
        """MPI_Abort is a deliberate job kill, not an argument-check
        error: the user error handler plays no role."""
        def main(ctx):
            ctx.comm.set_errhandler(lambda comm, err: None)
            yield None
            if ctx.rank == 0:
                ctx.comm.abort()

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.CRASHED
