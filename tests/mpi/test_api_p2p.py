"""Point-to-point MPI semantics, via full job runs."""

import numpy as np
import pytest

from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, MPI_BYTE, MPI_DOUBLE, MPI_INT
from repro.mpi.simulator import JobStatus
from tests.mpi._util import buf_addr, run_app


class TestSendRecv:
    def test_basic_transfer(self):
        def main(ctx):
            buf = buf_addr(ctx)
            if ctx.rank == 0:
                ctx.image.address_space.store_f64(buf, 1.25)
                yield from ctx.comm.send(buf, 1, MPI_DOUBLE, 1, 5)
            else:
                st = yield from ctx.comm.recv(buf, 1, MPI_DOUBLE, 0, 5)
                assert ctx.image.address_space.load_f64(buf) == 1.25
                assert st.source == 0 and st.tag == 5
                assert st.get_count(MPI_DOUBLE) == 1

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED

    def test_message_ordering_preserved(self):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            if ctx.rank == 0:
                for i in range(5):
                    sp.store_i32(buf, i)
                    yield from ctx.comm.send(buf, 1, MPI_INT, 1, 3)
            else:
                for i in range(5):
                    yield from ctx.comm.recv(buf, 1, MPI_INT, 0, 3)
                    assert sp.load_i32(buf) == i

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED

    def test_tag_selectivity(self):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            if ctx.rank == 0:
                sp.store_i32(buf, 111)
                yield from ctx.comm.send(buf, 1, MPI_INT, 1, 1)
                sp.store_i32(buf, 222)
                yield from ctx.comm.send(buf, 1, MPI_INT, 1, 2)
            else:
                # Receive tag 2 first even though tag 1 arrived first.
                yield from ctx.comm.recv(buf, 1, MPI_INT, 0, 2)
                assert sp.load_i32(buf) == 222
                yield from ctx.comm.recv(buf, 1, MPI_INT, 0, 1)
                assert sp.load_i32(buf) == 111

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED

    def test_any_source_any_tag(self):
        def main(ctx):
            buf = buf_addr(ctx)
            if ctx.rank == 0:
                seen = set()
                for _ in range(3):
                    st = yield from ctx.comm.recv(
                        buf, 1, MPI_INT, ANY_SOURCE, ANY_TAG
                    )
                    seen.add(st.source)
                assert seen == {1, 2, 3}
            else:
                ctx.image.address_space.store_i32(buf, ctx.rank)
                yield from ctx.comm.send(buf, 1, MPI_INT, 0, 40 + ctx.rank)

        result, _ = run_app(main, nprocs=4)
        assert result.status is JobStatus.COMPLETED

    def test_rendezvous_large_message(self):
        n = 512  # 4096 bytes > default 1024 eager threshold

        def main(ctx):
            addr = ctx.image.heap.malloc(n * 8)
            view = ctx.image.heap_segment.view_f64(addr, n)
            if ctx.rank == 0:
                view[:] = np.arange(n)
                yield from ctx.comm.send(addr, n, MPI_DOUBLE, 1, 9)
            else:
                yield from ctx.comm.recv(addr, n, MPI_DOUBLE, 0, 9)
                np.testing.assert_array_equal(view, np.arange(n))

        result, job = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED
        # Receiver saw RTS (control) + data; sender saw CTS (control).
        assert job.endpoints[1].stats.control_packets >= 1
        assert job.endpoints[0].stats.control_packets >= 1

    def test_isend_irecv_wait(self):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            if ctx.rank == 0:
                sp.store_i32(buf, 7)
                req = ctx.comm.isend(buf, 1, MPI_INT, 1, 2)
                yield from ctx.comm.wait(req)
            else:
                req = ctx.comm.irecv(buf, 1, MPI_INT, 0, 2)
                st = yield from ctx.comm.wait(req)
                assert sp.load_i32(buf) == 7
                assert st.count_bytes == 4

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED

    def test_sendrecv_exchange(self):
        def main(ctx):
            buf = buf_addr(ctx)
            sp = ctx.image.address_space
            other = 1 - ctx.rank
            sp.store_i32(buf, ctx.rank + 100)
            st = yield from ctx.comm.sendrecv(
                buf, 1, MPI_INT, other, 1, buf + 16, 1, MPI_INT, other, 1
            )
            assert sp.load_i32(buf + 16) == other + 100
            assert st.source == other

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED

    def test_unexpected_message_staged_in_mpi_heap(self):
        def main(ctx):
            buf = buf_addr(ctx)
            if ctx.rank == 0:
                ctx.image.address_space.store_i32(buf, 1)
                yield from ctx.comm.send(buf, 1, MPI_INT, 1, 5)
            else:
                # Let the message arrive before posting the receive.
                for _ in range(6):
                    yield None
                ctx.job.adis[1].progress()
                assert ctx.image.heap.mpi_bytes() > 0  # staged chunk
                yield from ctx.comm.recv(buf, 1, MPI_INT, 0, 5)
                assert ctx.image.heap.mpi_bytes() == 0  # freed on match

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED

    def test_zero_count_message(self):
        def main(ctx):
            buf = buf_addr(ctx)
            if ctx.rank == 0:
                yield from ctx.comm.send(buf, 0, MPI_BYTE, 1, 1)
            else:
                st = yield from ctx.comm.recv(buf, 0, MPI_BYTE, 0, 1)
                assert st.count_bytes == 0

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED


class TestDeadlocks:
    def test_recv_without_send_deadlocks(self):
        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.comm.recv(buf_addr(ctx), 1, MPI_INT, 1, 1)

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.HUNG
        assert "deadlock" in result.detail

    def test_mismatched_tags_deadlock(self):
        def main(ctx):
            buf = buf_addr(ctx)
            if ctx.rank == 0:
                yield from ctx.comm.send(buf, 1, MPI_INT, 1, 1)
                yield from ctx.comm.recv(buf, 1, MPI_INT, 1, 2)
            else:
                yield from ctx.comm.recv(buf, 1, MPI_INT, 0, 1)
                yield from ctx.comm.send(buf, 1, MPI_INT, 0, 99)  # wrong tag

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.HUNG


class TestTruncation:
    def test_overlong_message_is_fatal(self):
        def main(ctx):
            buf = buf_addr(ctx)
            if ctx.rank == 0:
                yield from ctx.comm.send(buf, 8, MPI_INT, 1, 1)
            else:
                yield from ctx.comm.recv(buf, 1, MPI_INT, 0, 1)

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.CRASHED
        assert any("p4_error" in line for line in result.stderr)
