"""Rendezvous-protocol edge cases at the ADI level."""

import numpy as np
import pytest

from repro.mpi.datatypes import MPI_DOUBLE
from repro.mpi.simulator import Job, JobConfig, JobStatus
from tests.mpi._util import GenericApp, buf_addr, run_app

#: Elements that exceed the 2048-byte eager threshold.
BIG = 512


def big_buffer(ctx):
    addr = ctx.image.heap.malloc(BIG * 8)
    return addr, ctx.image.heap_segment.view_f64(addr, BIG)


class TestRendezvousFlow:
    def test_sender_blocks_until_cts(self):
        """A blocking rendezvous send cannot complete before the receiver
        posts - observable through the scheduler round count."""

        def main(ctx):
            addr, view = big_buffer(ctx)
            if ctx.rank == 0:
                view[:] = 7.0
                yield from ctx.comm.send(addr, BIG, MPI_DOUBLE, 1, 1)
                ctx.print("send done")
            else:
                for _ in range(10):
                    yield None  # delay the post
                ctx.print("posting recv")
                yield from ctx.comm.recv(addr, BIG, MPI_DOUBLE, 0, 1)
                assert view[0] == 7.0

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED
        post = next(i for i, l in enumerate(result.stdout) if "posting" in l)
        done = next(i for i, l in enumerate(result.stdout) if "send done" in l)
        assert post < done

    def test_rts_parked_until_matching_recv(self):
        def main(ctx):
            addr, view = big_buffer(ctx)
            if ctx.rank == 0:
                view[:] = np.arange(BIG)
                yield from ctx.comm.send(addr, BIG, MPI_DOUBLE, 1, 5)
            else:
                # a non-matching recv first: tag 9 (eager from rank 0)
                small = ctx.image.heap.malloc(8)
                req9 = ctx.comm.irecv(small, 1, MPI_DOUBLE, 0, 9)
                yield from ctx.comm.recv(addr, BIG, MPI_DOUBLE, 0, 5)
                np.testing.assert_array_equal(view, np.arange(BIG))
                assert not req9.ready()  # never matched by the RTS

        # A rank may exit with an unmatched posted receive outstanding
        # (real MPI calls this erroneous but it does not hang the job).
        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED

    def test_two_rendezvous_in_flight(self):
        def main(ctx):
            a_addr, a = big_buffer(ctx)
            b_addr, b = big_buffer(ctx)
            if ctx.rank == 0:
                a[:] = 1.0
                b[:] = 2.0
                ra = ctx.comm.isend(a_addr, BIG, MPI_DOUBLE, 1, 1)
                rb = ctx.comm.isend(b_addr, BIG, MPI_DOUBLE, 1, 2)
                yield from ctx.comm.waitall([ra, rb])
            else:
                # receive in reverse order
                yield from ctx.comm.recv(b_addr, BIG, MPI_DOUBLE, 0, 2)
                yield from ctx.comm.recv(a_addr, BIG, MPI_DOUBLE, 0, 1)
                assert b[0] == 2.0 and a[0] == 1.0

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED

    def test_rendezvous_traffic_has_control_packets(self):
        def main(ctx):
            addr, view = big_buffer(ctx)
            if ctx.rank == 0:
                yield from ctx.comm.send(addr, BIG, MPI_DOUBLE, 1, 1)
            else:
                yield from ctx.comm.recv(addr, BIG, MPI_DOUBLE, 0, 1)

        result, job = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED
        # receiver sees RTS (control) + RNDV_DATA; sender sees CTS.
        assert job.endpoints[1].stats.control_packets == 1
        assert job.endpoints[1].stats.data_packets == 1
        assert job.endpoints[0].stats.control_packets == 1

    def test_eager_threshold_boundary(self):
        """Exactly-threshold payloads go eager; one byte more goes
        rendezvous."""
        from repro.mpi.adi import AdiConfig

        def main(ctx):
            n_eager = 2048 // 8
            addr, _ = big_buffer(ctx)
            if ctx.rank == 0:
                yield from ctx.comm.send(addr, n_eager, MPI_DOUBLE, 1, 1)
                yield from ctx.comm.send(addr, n_eager + 1, MPI_DOUBLE, 1, 2)
            else:
                yield from ctx.comm.recv(addr, n_eager, MPI_DOUBLE, 0, 1)
                yield from ctx.comm.recv(addr, n_eager + 1, MPI_DOUBLE, 0, 2)

        result, job = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED
        # The threshold-sized message went eager (one data packet); the
        # one-element-larger message negotiated (RTS control + data).
        assert job.endpoints[1].stats.control_packets == 1
        assert job.endpoints[1].stats.data_packets == 2
