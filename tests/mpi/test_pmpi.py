"""PMPI profiling interposition."""

from repro.mpi.datatypes import MPI_INT
from repro.mpi.pmpi import ProfilingComm
from repro.mpi.simulator import JobStatus
from tests.mpi._util import GenericApp, buf_addr, run_app


class TestProfilingComm:
    def test_counts_and_forwards(self):
        counts = {}

        def main(ctx):
            prof = ProfilingComm(ctx.comm)
            buf = buf_addr(ctx)
            if ctx.rank == 0:
                ctx.image.address_space.store_i32(buf, 5)
                yield from prof.send(buf, 1, MPI_INT, 1, 1)
            else:
                yield from prof.recv(buf, 1, MPI_INT, 0, 1)
                assert ctx.image.address_space.load_i32(buf) == 5
            counts[ctx.rank] = dict(prof.call_counts)

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED
        assert counts[0] == {"send": 1}
        assert counts[1] == {"recv": 1}

    def test_interceptor_runs_before_call(self):
        seen = []

        def main(ctx):
            prof = ProfilingComm(ctx.comm)
            prof.add_interceptor(lambda name, args, kwargs: seen.append(name))
            yield from prof.barrier()
            assert prof.get_rank() == ctx.rank

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED
        assert seen.count("barrier") == 2
        assert "get_rank" in seen

    def test_attribute_passthrough(self):
        def main(ctx):
            prof = ProfilingComm(ctx.comm)
            assert prof.rank == ctx.rank
            assert prof.size == ctx.nprocs
            assert prof.pmpi is ctx.comm
            yield None

        result, _ = run_app(main, nprocs=2)
        assert result.status is JobStatus.COMPLETED
