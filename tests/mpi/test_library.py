"""MPI library link-map objects."""

from repro.memory.process import ProcessImage
from repro.memory.symbols import Linker
from repro.mpi.library import (
    MPI_BSS_SYMBOLS,
    MPI_DATA_SYMBOLS,
    MPI_TEXT_SYMBOLS,
    add_mpi_library,
)


def linked_image(**kwargs) -> ProcessImage:
    linker = Linker()
    linker.add_text("user_main", b"\x01" * 64)
    add_mpi_library(linker, **kwargs)
    return ProcessImage.from_linker(linker)


class TestLinkMap:
    def test_all_symbols_present(self):
        image = linked_image()
        for name, _ in MPI_TEXT_SYMBOLS + MPI_DATA_SYMBOLS + MPI_BSS_SYMBOLS:
            sym = image.symtab.lookup(name)
            assert sym.library == "mpi"

    def test_classic_names_included(self):
        names = {n for n, _ in MPI_TEXT_SYMBOLS}
        assert {"MPI_Init", "MPI_Send", "MPI_Recv", "p4_recv"} <= names

    def test_scaling(self):
        small = linked_image(text_scale=0.1)
        large = linked_image(text_scale=1.0)
        assert small.symtab.section_size("text", "mpi") < large.symtab.section_size(
            "text", "mpi"
        )

    def test_blobs_are_decodable_code(self):
        from repro.cpu.isa import Op, decode

        image = linked_image(text_scale=0.1)
        sym = image.symtab.lookup("MPI_Send")
        first = decode(image.text.read_bytes(sym.addr, 8))
        last = decode(image.text.read_bytes(sym.end - 8, 8))
        assert first.op is Op.NOP
        assert last.op is Op.RET

    def test_user_text_distinguished(self):
        image = linked_image()
        assert image.in_user_text(image.addr_of("user_main"))
        assert not image.in_user_text(image.addr_of("MPI_Bcast"))
