"""Harness: table rendering and single-fault runs."""

import pytest

from repro.harness.runner import run_fault_free, run_with_fault
from repro.harness.tables import (
    PAPER_REGION_LABELS,
    render_campaign_table,
    render_profile_table,
)
from repro.injection.campaign import Campaign
from repro.injection.faults import FaultSpec, Region
from repro.injection.outcomes import Manifestation
from repro.mpi.simulator import JobConfig
from repro.sampling.plans import CampaignPlan
from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY


def wavetoy_factory():
    from repro.apps import WavetoyApp

    return WavetoyApp(**SMALL_WAVETOY)


class TestRunner:
    def test_fault_free(self):
        result = run_fault_free(wavetoy_factory, JobConfig(nprocs=SMALL_NPROCS))
        assert result.completed

    def test_run_with_fault_classifies(self):
        cfg = JobConfig(nprocs=SMALL_NPROCS)
        ref = run_fault_free(wavetoy_factory, cfg)
        spec = FaultSpec(
            Region.REGULAR_REG, 0, time_blocks=ref.blocks_per_rank[0] // 2,
            bit=30, reg_index=4,  # ESP flip mid-run: near-certain crash
        )
        manifestation, record, result = run_with_fault(
            wavetoy_factory, cfg, spec, reference=ref
        )
        assert record.delivered
        assert manifestation in set(Manifestation)

    def test_reference_computed_on_demand(self):
        spec = FaultSpec(Region.MESSAGE, 0, bit=0, target_byte=10**9)
        manifestation, record, _ = run_with_fault(
            wavetoy_factory, JobConfig(nprocs=SMALL_NPROCS), spec
        )
        assert manifestation is Manifestation.CORRECT
        assert not record.delivered


class TestTableRendering:
    @pytest.fixture(scope="class")
    def campaign_result(self):
        campaign = Campaign(
            wavetoy_factory,
            JobConfig(nprocs=SMALL_NPROCS),
            plan=CampaignPlan(per_region={r.value: 3 for r in Region}),
        )
        return campaign.run(regions=(Region.REGULAR_REG, Region.MESSAGE))

    def test_labels_match_paper(self):
        assert PAPER_REGION_LABELS[Region.REGULAR_REG] == "Regular Reg."
        assert PAPER_REGION_LABELS[Region.FP_REG] == "FP Reg."
        assert len(PAPER_REGION_LABELS) == 8

    def test_render_with_detection_columns(self, campaign_result):
        text = render_campaign_table(campaign_result, title="Table 3 style")
        assert "Table 3 style" in text
        assert "Regular Reg." in text
        assert "App Detected" in text
        assert "estimation error" in text

    def test_render_without_detection_columns(self, campaign_result):
        text = render_campaign_table(
            campaign_result, include_detection_columns=False
        )
        assert "App Detected" not in text
        assert "Incorrect" in text

    def test_profile_table(self):
        from repro.trace.profiles import profile_application

        profile = profile_application(wavetoy_factory(), JobConfig(nprocs=SMALL_NPROCS))
        text = render_profile_table([profile])
        assert "wavetoy" in text
        assert "Heap Size (MB)" in text
        assert "Header %" in text


class TestExperimentRegistry:
    def test_all_paper_artifacts_registered(self):
        from repro.harness.experiments import EXPERIMENTS

        assert set(EXPERIMENTS) == {
            "T1", "T2", "T3", "T4", "T5", "T6", "T7",
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
            # extensions / ablations (sections 6.2 and 8.2)
            "E9", "E10", "E11", "E12", "E13",
        }

    def test_unknown_experiment(self):
        from repro.harness.experiments import get_experiment

        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("T9")

    def test_cheap_experiments_run(self):
        """The closed-form experiments must run instantly and match the
        paper's headline numbers."""
        from repro.harness.experiments import EXPERIMENTS

        text, metrics = EXPERIMENTS["E1"].run(None)
        assert metrics["asciq_escaped"] == pytest.approx(1650.0)
        text, metrics = EXPERIMENTS["E4"].run(None)
        assert 0.044 <= metrics["d400"] <= 0.049
        text, metrics = EXPERIMENTS["E8"].run(None)
        assert metrics["detected_at"] is not None

    def test_report_builder(self):
        from repro.harness.report import Report

        report = Report(title="smoke")
        report.run_experiment("E1")
        md = report.render_markdown()
        assert "# smoke" in md
        assert "E1" in md and "ASCI Q" in md
