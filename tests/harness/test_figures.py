"""Working-set figure rendering (Tables 5-7 output form)."""

import pytest

from repro.harness.figures import render_working_set_table
from repro.mpi.simulator import JobConfig
from repro.trace.working_set import trace_memory
from tests.conftest import SMALL_NPROCS, small_wavetoy


@pytest.fixture(scope="module")
def report():
    return trace_memory(small_wavetoy(), JobConfig(nprocs=SMALL_NPROCS))


class TestRendering:
    def test_contains_all_series(self, report):
        text = render_working_set_table(report)
        for col in ("blocks", "text %", "d+b+h %", "data %", "bss %", "heap %"):
            assert col in text

    def test_summary_line(self, report):
        text = render_working_set_table(report)
        assert "compute phase" in text
        assert "wavetoy" in text

    def test_sample_count(self, report):
        text = render_working_set_table(report, samples=8)
        data_lines = [
            l for l in text.splitlines() if l.strip() and l.lstrip()[0].isdigit()
        ]
        assert len(data_lines) == 8

    def test_percentages_in_range(self, report):
        text = render_working_set_table(report, samples=6)
        for line in text.splitlines():
            parts = line.split()
            if parts and parts[0].isdigit():
                for value in parts[1:]:
                    assert 0.0 <= float(value) <= 100.0
