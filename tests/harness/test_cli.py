"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "E12" in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "E4"]) == 0
        out = capsys.readouterr().out
        assert "3.93e+06" in out

    def test_run_with_override(self, capsys):
        assert main(["run", "E2", "40"]) == 0
        out = capsys.readouterr().out
        assert "1-bit upsets" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "T99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


SMALL_PARAMS = "nx=32,ny=8,steps=6,cold_heap_factor=3,output_stride=1"


def campaign_run_args(store, extra=()):
    return [
        "campaign", "run", "--app", "wavetoy", "--regions", "message",
        "--params", SMALL_PARAMS, "--nprocs", "4", "--store", str(store),
        "--log-interval", "0", *extra,
    ]


class TestCampaignCli:
    def test_run_and_status_and_merge(self, capsys, tmp_path):
        store = tmp_path / "out.jsonl"
        assert main(campaign_run_args(store, ["-n", "3"])) == 0
        out = capsys.readouterr().out
        assert "Fault Injection Results (wavetoy)" in out
        assert "Message" in out

        assert main(["campaign", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "wavetoy" in out and "message" in out

        merged = tmp_path / "merged.jsonl"
        assert main([
            "campaign", "merge", str(store), str(store), "--out", str(merged)
        ]) == 0
        assert "3 unique trials" in capsys.readouterr().out

    def test_resume_round_trip(self, capsys, tmp_path):
        store = tmp_path / "out.jsonl"
        assert main(campaign_run_args(store, ["-n", "2"])) == 0
        capsys.readouterr()
        assert main(campaign_run_args(store, ["-n", "4", "--resume"])) == 0
        err = capsys.readouterr().err
        assert "2 resumed from store" in err
        assert sum(1 for _ in open(store)) == 4

    def test_progress_lines_on_stderr(self, capsys, tmp_path):
        store = tmp_path / "out.jsonl"
        args = campaign_run_args(store, ["-n", "2"])
        args[args.index("--log-interval") + 1] = "1"
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "[wavetoy:message]" in err
        assert "[done]" in err

    def test_resume_requires_store(self, capsys):
        args = [
            "campaign", "run", "--app", "wavetoy", "--regions", "message",
            "--params", SMALL_PARAMS, "--nprocs", "4", "-n", "2", "--resume",
        ]
        assert main(args) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_unknown_app(self, capsys):
        assert main(["campaign", "run", "--app", "nosuch", "-n", "1"]) == 2
        assert "unknown application" in capsys.readouterr().err

    def test_unknown_region(self):
        with pytest.raises(SystemExit):
            main([
                "campaign", "run", "--app", "wavetoy", "--regions", "bogus",
                "--params", SMALL_PARAMS, "-n", "1",
            ])

    def test_empty_status(self, capsys, tmp_path):
        assert main([
            "campaign", "status", "--store", str(tmp_path / "none.jsonl")
        ]) == 0
        assert "no stored trials" in capsys.readouterr().out


class TestServeAndArtifactsCli:
    def test_run_with_serve_and_artifacts(self, capsys, tmp_path):
        """End-to-end --serve + --artifacts: the campaign binds an
        ephemeral port, leaves a complete run directory, and 'report
        DIR --check' confirms bit-identical regeneration."""
        run_dir = tmp_path / "run"
        args = campaign_run_args(
            tmp_path / "out.jsonl",
            [
                "-n", "2",
                "--serve", "127.0.0.1:0",
                "--artifacts", str(run_dir),
            ],
        )
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "serving telemetry at http://127.0.0.1:" in err
        assert f"wrote artifacts: {run_dir}" in err
        for name in (
            "manifest.json",
            "events.jsonl",
            "metrics.jsonl",
            "summary.json",
            "report.html",
            "reproduce.sh",
        ):
            assert (run_dir / name).exists(), name
        # reproduce.sh carries the exact invocation.
        assert "--serve 127.0.0.1:0" in (run_dir / "reproduce.sh").read_text()

        assert main(["report", str(run_dir), "--check"]) == 0
        assert "reproduce exactly" in capsys.readouterr().out

    def test_report_regenerates_deleted_outputs(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        assert main(campaign_run_args(
            tmp_path / "out.jsonl", ["-n", "2", "--artifacts", str(run_dir)]
        )) == 0
        capsys.readouterr()
        expected = (run_dir / "summary.json").read_bytes()
        (run_dir / "summary.json").unlink()
        (run_dir / "report.html").unlink()
        assert main(["report", str(run_dir)]) == 0
        assert "regenerated" in capsys.readouterr().out
        assert (run_dir / "summary.json").read_bytes() == expected

    def test_report_check_fails_on_drift(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        assert main(campaign_run_args(
            tmp_path / "out.jsonl", ["-n", "2", "--artifacts", str(run_dir)]
        )) == 0
        with open(run_dir / "summary.json", "a") as fh:
            fh.write(" ")
        assert main(["report", str(run_dir), "--check"]) == 1
        assert "differs from regeneration" in capsys.readouterr().err

    def test_report_bad_target(self, capsys):
        assert main(["report", "no-such-thing"]) == 2
        assert "neither an artifact run directory" in capsys.readouterr().err

    def test_bad_serve_endpoint(self, capsys, tmp_path):
        args = campaign_run_args(
            tmp_path / "out.jsonl", ["-n", "1", "--serve", "not-a-port"]
        )
        assert main(args) == 2
        assert "expected [HOST:]PORT" in capsys.readouterr().err

    def test_status_streams_store(self, capsys, tmp_path):
        """campaign status --json rows come from the streaming fold."""
        import json as _json

        store = tmp_path / "out.jsonl"
        assert main(campaign_run_args(store, ["-n", "3"])) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "--store", str(store), "--json"]) == 0
        payload = _json.loads(capsys.readouterr().out)
        (row,) = payload["regions"]
        assert row["region"] == "message"
        assert row["trials"] == 3
        assert "manifestations" in row
