"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "E12" in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "E4"]) == 0
        out = capsys.readouterr().out
        assert "3.93e+06" in out

    def test_run_with_override(self, capsys):
        assert main(["run", "E2", "40"]) == 0
        out = capsys.readouterr().out
        assert "1-bit upsets" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "T99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
