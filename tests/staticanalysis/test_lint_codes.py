"""Drift test over every diagnostic family: SA0xx, SA1xx, SA2xx, SA3xx.

Three invariants keep the lint surface documented and honest:

* every stable code has a nonempty one-line description in its family's
  code table;
* every code is mentioned in its owning module's docstring (the tables
  readers actually see);
* every code has at least one fixture that makes it fire - a check that
  cannot be triggered is dead weight, and a fixture that stops
  triggering means the check regressed.
"""

import pytest

from repro.cpu.isa import INSN_SIZE, Insn, Op, encode
from repro.staticanalysis import lint as lint_module
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.lint import LINT_CODES, lint_cfg
from repro.staticanalysis.mpicheck import check_skeleton, extract_skeleton
from repro.staticanalysis.mpicheck import passes as mpi_passes
from repro.staticanalysis.mpicheck.fixture import BuggyApp
from repro.staticanalysis.mpicheck.passes import MPI_LINT_CODES
from repro.staticanalysis.outcomes import OUTCOME_LINT_CODES, audit_outcomes
from repro.staticanalysis.outcomes import passes as outcome_passes
from repro.staticanalysis.outcomes.fixtures import FIXTURES as OUTCOME_FIXTURES
from repro.staticanalysis.propagation import PROPAGATION_LINT_CODES, audit_app
from repro.staticanalysis.propagation import passes as prop_passes
from repro.staticanalysis.propagation.fixtures import FIXTURES

FAMILIES = [
    (LINT_CODES, lint_module),
    (MPI_LINT_CODES, mpi_passes),
    (PROPAGATION_LINT_CODES, prop_passes),
    (OUTCOME_LINT_CODES, outcome_passes),
]

ALL_CODES = {
    **LINT_CODES,
    **MPI_LINT_CODES,
    **PROPAGATION_LINT_CODES,
    **OUTCOME_LINT_CODES,
}


def lint_source(source: str):
    from repro.cpu.assembler import assemble_function
    from repro.staticanalysis.lint import lint_function

    return lint_function(assemble_function("f", source))


def sa005_diags():
    code = encode(Insn(Op.JMP, imm=32 * INSN_SIZE)) + encode(Insn(Op.RET))
    return lint_cfg(ControlFlowGraph.from_code("f", code))


#: code -> callable returning diagnostics that must include the code.
ASM_TRIGGERS = {
    "SA001": lambda: lint_source("movi eax, 1\nmovi ebx, 5\nret"),
    "SA002": lambda: lint_source("mov eax, ecx\nret"),
    "SA003": lambda: lint_source("movi eax, 1\nret\nmovi ecx, 2\nret"),
    "SA004": lambda: lint_source("movi eax, 1\npush eax\nret"),
    "SA005": sa005_diags,
}

#: BuggyApp variant whose skeleton must report each MPI code.
MPI_TRIGGERS = {
    "SA101": "deadlock",
    "SA102": "deadlock",
    "SA103": "salad",
    "SA104": "salad",
    "SA105": "truncation",
    "SA106": "salad",
    "SA107": "salad",
    "SA108": "collective",
}


class TestTablesComplete:
    def test_codes_are_unique_across_families(self):
        total = sum(len(t) for t, _ in FAMILIES)
        assert len(ALL_CODES) == total

    @pytest.mark.parametrize("code", sorted(ALL_CODES))
    def test_every_code_has_a_message(self, code):
        message = ALL_CODES[code]
        assert isinstance(message, str) and message.strip()

    @pytest.mark.parametrize(
        "table,module",
        FAMILIES,
        ids=["SA0xx", "SA1xx", "SA2xx", "SA3xx"],
    )
    def test_docstring_documents_every_code(self, table, module):
        doc = module.__doc__ or ""
        missing = [code for code in table if code not in doc]
        assert missing == []

    def test_families_cross_reference_each_other(self):
        # the SA0xx table is the entry point: it must point readers at
        # the other three families' homes
        doc = lint_module.__doc__
        assert "SA1xx" in doc and "SA2xx" in doc and "SA3xx" in doc


class TestEveryCodeTriggers:
    @pytest.mark.parametrize("code", sorted(LINT_CODES))
    def test_asm_codes(self, code):
        diags = ASM_TRIGGERS[code]()
        assert code in {d.code for d in diags}

    @pytest.mark.parametrize("code", sorted(MPI_LINT_CODES))
    def test_mpi_codes(self, code):
        skeleton = extract_skeleton(BuggyApp(bug=MPI_TRIGGERS[code]), 2)
        assert code in {d.code for d in check_skeleton(skeleton)}

    @pytest.mark.parametrize("code", sorted(PROPAGATION_LINT_CODES))
    def test_propagation_codes(self, code):
        open_findings, _ = audit_app(FIXTURES[code]())
        assert code in {d.code for d in open_findings}

    @pytest.mark.parametrize("code", sorted(OUTCOME_LINT_CODES))
    def test_outcome_codes(self, code):
        diags = audit_outcomes(OUTCOME_FIXTURES[code]())
        assert code in {d.code for d in diags}

    def test_trigger_maps_cover_their_families(self):
        assert set(ASM_TRIGGERS) == set(LINT_CODES)
        assert set(MPI_TRIGGERS) == set(MPI_LINT_CODES)
        assert set(FIXTURES) == set(PROPAGATION_LINT_CODES)
        assert set(OUTCOME_FIXTURES) == set(OUTCOME_LINT_CODES)
