"""Taint-cone unit tests: hand-checked propagation over tiny kernels."""

import pytest

from repro.cpu.registers import EAX, EBX, ECX, REG_NAMES
from repro.staticanalysis.propagation.taint import TaintAnalysis


def analysis(source: str) -> TaintAnalysis:
    return TaintAnalysis.from_source("f", source)


class TestMaskedSites:
    def test_overwritten_register_is_provably_masked(self):
        # eax is rewritten from a clean constant before anything reads it
        a = analysis("movi eax, 1\nmovi eax, 2\nret")
        cone = a.cone_after(0, EAX)
        assert cone.masked
        assert cone.escapes == frozenset()

    def test_unreachable_site_has_empty_cone(self):
        a = analysis("movi eax, 1\njmp end\nmovi ecx, 2\nend: ret")
        cone = a.cone_after(2, ECX)
        assert cone.masked
        assert cone.tainted == frozenset()

    def test_value_dying_in_scratch_register(self):
        # ecx receives the corrupt value but is then reloaded clean
        a = analysis(
            "movi eax, 1\nmov ecx, eax\nmovi ecx, 9\nmovi eax, 0\nret"
        )
        assert a.cone_after(0, EAX).masked


class TestEscapes:
    def test_return_register_escapes(self):
        cone = analysis("movi eax, 7\nret").cone_after(0, EAX)
        assert not cone.masked
        assert "ret" in cone.escapes

    def test_copy_chain_reaches_return(self):
        cone = analysis(
            "movi ecx, 3\nmov ebx, ecx\nmov eax, ebx\nret"
        ).cone_after(0, ECX)
        assert "ret" in cone.escapes
        assert set(cone.registers) >= {"ecx", "ebx", "eax"}

    def test_flags_at_exit_escape(self):
        cone = analysis("movi ecx, 1\ncmpi ecx, 0\nret").cone_after(0, ECX)
        assert "flags" in cone.escapes

    def test_branch_on_tainted_flags_is_control_flow(self):
        src = """
            movi ecx, 1
            cmpi ecx, 0
            jz skip
            movi ebx, 2
        skip:
            ret
        """
        cone = analysis(src).cone_after(0, ECX)
        assert cone.branch_tainted
        assert "branch" in cone.escapes

    def test_x87_load_through_tainted_pointer(self):
        cone = analysis("movi eax, 64\nfld [eax]\nfstp [eax]\nret").cone_after(
            0, EAX
        )
        assert "x87" in cone.tainted


class TestPointsToPrecision:
    def test_store_through_relocated_symbol_is_precise(self):
        src = "movi ecx, $tbl\nmovi eax, 5\nstore [ecx], eax\nret"
        cone = analysis(src).cone_after(1, EAX)
        assert cone.memory_tokens == frozenset({"sym:tbl"})
        assert not cone.wild_store
        assert cone.symbols == ("tbl",)

    def test_store_through_loaded_pointer_is_wild(self):
        # the pointer came from memory: its region is unknown, so the
        # write could land anywhere
        src = (
            "push ebp\nmov ebp, esp\nload ecx, [ebp]\nmovi eax, 5\n"
            "store [ecx], eax\nmov esp, ebp\npop ebp\nret"
        )
        cone = analysis(src).cone_after(3, EAX)
        assert "anymem" in cone.tainted
        assert cone.memory_tokens == frozenset({"heap", "stack"})

    def test_push_spills_to_stack(self):
        cone = analysis("movi ecx, 2\npush ecx\npop ebx\nret").cone_after(
            0, ECX
        )
        assert "stack" in cone.escapes

    def test_call_taints_wholesale(self):
        cone = analysis("movi ecx, 1\ncallr ebx\nret").cone_after(0, ECX)
        assert "anymem" in cone.tainted
        assert "x87" in cone.tainted
        assert f"reg:{EAX}" in cone.tainted


class TestEntrySeeding:
    SRC = "movi ecx, $tbl\nload eax, [ecx]\nret"

    def test_seeded_symbol_taints_its_readers(self):
        cone = analysis(self.SRC).cone_from_tokens(frozenset({"sym:tbl"}))
        assert "ret" in cone.escapes

    def test_unrelated_seed_does_not_taint(self):
        # corrupt heap; the kernel only reads a named symbol
        cone = analysis(self.SRC).cone_from_tokens(frozenset({"heap"}))
        assert "ret" not in cone.escapes
        assert cone.escapes == frozenset({"heap"})

    def test_stack_seed_uses_model_grammar(self):
        src = "push ebp\nmov ebp, esp\nload eax, [ebp]\npop ebp\nret"
        cone = analysis(src).cone_from_tokens(frozenset({"stack"}))
        assert "ret" in cone.escapes

    def test_non_memory_seed_rejected(self):
        with pytest.raises(ValueError):
            analysis(self.SRC).cone_from_tokens(frozenset({"reg:0"}))


class TestSiteEnumeration:
    def test_written_gprs_exclude_stack_management(self):
        a = analysis("push ebp\nmov ebp, esp\nmovi eax, 1\npop ebp\nret")
        assert a.written_gprs(0) == ()  # push only moves ESP
        assert a.written_gprs(1) == ()  # frame pointer setup
        assert a.written_gprs(2) == (EAX,)

    def test_bounds_checked(self):
        a = analysis("movi eax, 1\nret")
        with pytest.raises(IndexError):
            a.cone_after(99, EAX)
        with pytest.raises(IndexError):
            a.cone_after(0, 12)

    def test_deterministic(self):
        a = analysis("movi eax, 1\nmov ecx, eax\nret")
        assert a.cone_after(0, EAX) == a.cone_after(0, EAX)
        b = TaintAnalysis.from_source("f", "movi eax, 1\nmov ecx, eax\nret")
        assert a.cone_after(0, EAX) == b.cone_after(0, EAX)


class TestLoops:
    def test_self_loop_converges(self):
        src = """
            movi ecx, 4
            movi eax, 0
        loop:
            add eax, ecx
            addi ecx, -1
            cmpi ecx, 0
            jnz loop
            ret
        """
        cone = analysis(src).cone_after(0, ECX)
        assert not cone.masked
        assert "branch" in cone.escapes
        assert "ret" in cone.escapes

    def test_register_names_render(self):
        cone = analysis("movi ebx, 1\nmov ecx, ebx\nret").cone_after(0, EBX)
        assert cone.registers == tuple(
            REG_NAMES[r] for r in sorted({EBX, ECX})
        )
