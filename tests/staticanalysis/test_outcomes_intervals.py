"""Unit tests for the interval domain and the escape proof."""

import pytest

from repro.cpu.assembler import assemble_function
from repro.memory.layout import STATIC_IMAGE_WINDOW, TEXT_BASE
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.outcomes.intervals import (
    TOP,
    Interval,
    IntervalAnalysis,
    U32_MAX,
    flip_escapes,
    stack_window,
)
from repro.cpu.registers import EAX, EBP, ECX, ESP

WINDOWS = (STATIC_IMAGE_WINDOW, stack_window())


def cfg_of(source: str) -> ControlFlowGraph:
    return ControlFlowGraph.from_function(assemble_function("f", source))


class TestIntervalLattice:
    def test_const_contains_only_itself(self):
        iv = Interval.const(42)
        assert iv.contains(42)
        assert not iv.contains(41)

    def test_join_is_the_hull(self):
        iv = Interval.const(10).join(Interval.const(20))
        assert (iv.lo, iv.hi) == (10, 20)
        assert iv.contains(15)

    def test_add_wraps_to_top(self):
        iv = Interval(U32_MAX - 1, U32_MAX).add_const(4)
        assert iv.is_top

    def test_arith_tracks_bounds(self):
        a = Interval(10, 20)
        b = Interval(1, 2)
        assert (a.add(b).lo, a.add(b).hi) == (11, 22)
        assert (a.sub(b).lo, a.sub(b).hi) == (8, 19)

    def test_sub_below_zero_is_top(self):
        assert Interval(0, 4).sub(Interval(8, 8)).is_top


class TestFlipEscapes:
    def test_top_never_proves_an_escape(self):
        assert not flip_escapes(TOP, 31, WINDOWS)

    def test_low_bit_of_a_text_pointer_stays_mapped(self):
        iv = Interval.const(TEXT_BASE + 0x1000)
        assert not flip_escapes(iv, 4, WINDOWS)

    def test_high_bit_of_a_text_pointer_escapes(self):
        # 0x08049000 with bit 31 set lands at 0x88049000: above the
        # static image, below the stack window.
        iv = Interval.const(TEXT_BASE + 0x1000)
        assert flip_escapes(iv, 31, WINDOWS)

    def test_direction_refinement_uses_the_bit_value(self):
        # Bit 30 of 0x08049000 is clear, so the flip can only add 2^30,
        # landing at 0x48049000 - outside both windows.  Without the
        # single-direction refinement the (impossible) downward flip
        # would block the proof.
        iv = Interval.const(TEXT_BASE + 0x1000)
        assert flip_escapes(iv, 30, WINDOWS)

    def test_stack_pointer_flip_into_stack_window_not_proven(self):
        lo, hi = stack_window()
        iv = Interval(lo, hi - 1)
        assert not flip_escapes(iv, 2, WINDOWS)

    def test_stack_pointer_high_bit_escapes(self):
        # The half-open window [lo, hi) keeps the whole interval below
        # the 2^30 boundary, so bit 30 refines to the upward direction
        # and the flip provably lands above every window.  (The closed
        # interval including 0xC0000000 would straddle the boundary and
        # block the proof.)
        lo, hi = stack_window()
        iv = Interval(lo, hi - 1)
        assert flip_escapes(iv, 30, WINDOWS)


class TestIntervalAnalysis:
    def test_movi_then_addi_is_constant(self):
        cfg = cfg_of("movi eax, 100\naddi eax, 5\nret")
        iv = IntervalAnalysis(cfg)
        # before the RET (index 2), eax is exactly 105
        assert iv.base_interval(2, EAX) == Interval.const(105)

    def test_entry_esp_is_the_stack_window(self):
        cfg = cfg_of("ret")
        iv = IntervalAnalysis(cfg)
        lo, hi = stack_window()
        for reg in (ESP, EBP):
            got = iv.base_interval(0, reg)
            assert (got.lo, got.hi) == (lo, hi - 1)

    def test_load_destroys_precision(self):
        cfg = cfg_of("movi ecx, 8\nload eax, [ecx]\nmov edx, eax\nret")
        iv = IntervalAnalysis(cfg)
        assert iv.base_interval(2, EAX).is_top

    def test_join_over_branches_is_the_hull(self):
        cfg = cfg_of(
            "cmpi ecx, 0\n"
            "jz other\n"
            "movi eax, 10\n"
            "jmp done\n"
            "other: movi eax, 20\n"
            "done: mov edx, eax\n"
            "ret"
        )
        iv = IntervalAnalysis(cfg)
        merged = iv.base_interval(5, EAX)
        assert (merged.lo, merged.hi) == (10, 20)

    def test_unknown_register_is_top(self):
        cfg = cfg_of("ret")
        iv = IntervalAnalysis(cfg)
        assert iv.base_interval(0, ECX).is_top
