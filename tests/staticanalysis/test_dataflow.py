"""Liveness and reaching-definitions fixpoints against hand-computed sets."""

from repro.cpu.assembler import assemble_function
from repro.cpu.registers import EAX, EBP, ECX, EDX, ESI, ESP
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.dataflow import (
    ENTRY_DEF,
    EXIT_LIVE,
    liveness,
    reaching_definitions,
)


def cfg_of(source: str) -> ControlFlowGraph:
    return ControlFlowGraph.from_function(assemble_function("f", source))


class TestLivenessStraightLine:
    #   0: movi eax, 1      eax dead before, live after
    #   1: mov ecx, eax     eax dies here (last read), ecx born
    #   2: add eax, ecx     reads ecx+eax... eax was overwritten? no:
    # keep it truly simple below.
    SRC = """
        movi eax, 1
        mov ecx, eax
        add ecx, eax
        mov eax, ecx
        ret
    """

    def test_hand_computed_live_sets(self):
        live = liveness(cfg_of(self.SRC))
        # before insn 0 only the convention set (esp for ret) is live
        assert EAX not in live.before[0]
        assert ECX not in live.before[0]
        # eax carries from its def at 0 to its last read at 2
        assert EAX in live.after[0]
        assert EAX in live.before[2]
        assert EAX not in live.after[2]
        # ecx carries from 1 to its read at 3
        assert ECX in live.after[1]
        assert ECX in live.before[3]
        assert ECX not in live.after[3]
        # the return value is live out of the last instruction
        assert EAX in live.after[3]

    def test_exit_convention(self):
        live = liveness(cfg_of(self.SRC))
        ret_index = len(live.cfg.insns) - 1
        assert live.after[ret_index] == EXIT_LIVE


class TestLivenessLoop:
    SRC = """
        movi eax, 0
        movi ecx, 0
    loop:
        add eax, ecx
        addi ecx, 1
        cmpi ecx, 8
        jl loop
        ret
    """

    def test_loop_carried_registers_live_through_backedge(self):
        cfg = cfg_of(self.SRC)
        live = liveness(cfg)
        body = cfg.blocks[1]
        # both accumulator and counter are live around the loop
        assert EAX in live.block_in[body.index]
        assert ECX in live.block_in[body.index]
        assert EAX in live.block_out[body.index]
        assert ECX in live.block_out[body.index]

    def test_dead_after_function(self):
        cfg = cfg_of(self.SRC)
        live = liveness(cfg)
        ret_index = len(cfg.insns) - 1
        assert ECX not in live.after[ret_index]

    def test_live_registers_summary(self):
        live = liveness(cfg_of(self.SRC))
        names = live.live_registers()
        assert EAX in names and ECX in names
        assert EDX not in names


class TestLivenessDiamond:
    SRC = """
        cmpi eax, 0
        jz other
        movi ecx, 1
        jmp join
    other:
        movi ecx, 2
    join:
        mov eax, ecx
        ret
    """

    def test_both_defs_reach_the_join_use(self):
        cfg = cfg_of(self.SRC)
        live = liveness(cfg)
        join = cfg.blocks[-1]
        assert ECX in live.block_in[join.index]
        # ecx is dead before its defs on both arms
        assert ECX not in live.before[2]
        assert ECX not in live.before[4]


class TestImplicitStack:
    def test_push_keeps_esp_live(self):
        live = liveness(cfg_of("push eax\npop ecx\nret"))
        assert ESP in live.before[0]
        assert ESP in live.before[1]

    def test_frame_registers_live_through_epilogue(self):
        live = liveness(
            cfg_of("push ebp\nmov ebp, esp\nmov esp, ebp\npop ebp\nret")
        )
        assert EBP in live.before[0]  # caller's ebp is saved
        # esp is rewritten from ebp at insn 2: ebp must be live there,
        # and the incoming esp value is dead (about to be overwritten)
        assert EBP in live.before[2]
        assert ESP not in live.before[2]
        assert ESP in live.after[2]  # the pop consumes the restored esp


class TestReachingDefs:
    SRC = """
        movi eax, 1
        movi eax, 2
        mov ecx, eax
        ret
    """

    def test_redefinition_kills(self):
        reach = reaching_definitions(cfg_of(self.SRC))
        assert reach.defs_of(2, EAX) == frozenset({1})

    def test_entry_defs_for_convention_registers(self):
        reach = reaching_definitions(cfg_of(self.SRC))
        assert reach.defs_of(0, ESP) == frozenset({ENTRY_DEF})
        assert reach.defs_of(0, EBP) == frozenset({ENTRY_DEF})
        assert reach.defs_of(0, EAX) == frozenset()

    def test_merge_at_join(self):
        src = """
            cmpi eax, 0
            jz other
            movi ecx, 1
            jmp join
        other:
            movi ecx, 2
        join:
            mov eax, ecx
            ret
        """
        reach = reaching_definitions(cfg_of(src))
        # the join's use of ecx sees both arm definitions (insns 2 and 4)
        assert reach.defs_of(5, ECX) == frozenset({2, 4})

    def test_loop_def_reaches_itself(self):
        src = """
            movi esi, 0
        loop:
            addi esi, 1
            cmpi esi, 4
            jl loop
            ret
        """
        reach = reaching_definitions(cfg_of(src))
        # around the back edge, both the init and the increment reach
        assert reach.defs_of(1, ESI) == frozenset({0, 1})


class TestEdgeCases:
    """Shapes the straight-line and diamond tests above never exercise."""

    def test_unreachable_block_reads_stay_local(self):
        from repro.cpu.registers import EDI

        # edi is read only in code after an unconditional ret: the dead
        # block's uses must not leak into the live-in of real code
        src = "movi eax, 1\nret\nmov ecx, edi\nret"
        cfg = cfg_of(src)
        lv = liveness(cfg)
        assert EDI not in lv.block_in[0]
        assert EDI not in lv.before[0]
        # the dead block itself still gets locally consistent sets, so
        # diagnostics over it (SA003 suppression) have data to work with
        dead = cfg.block_of[2]
        assert dead not in cfg.reachable()
        assert EDI in lv.before[2]

    def test_self_loop_block_converges(self):
        # a single block that is its own successor: the fixpoint must
        # carry facts around the tight back edge without oscillating
        src = """
        loop:
            addi esi, 1
            cmpi esi, 4
            jl loop
            ret
        """
        cfg = cfg_of(src)
        loop_block = cfg.block_of[0]
        assert loop_block in cfg.blocks[loop_block].succs  # really a self-loop
        lv = liveness(cfg)
        assert ESI in lv.block_in[loop_block]
        assert ESI in lv.block_out[loop_block]
        reach = reaching_definitions(cfg)
        # the increment's own definition reaches it around the back edge
        assert reach.defs_of(0, ESI) == frozenset({0})

    def test_register_live_across_call(self):
        # a value defined before a CALL and read after it: the call's
        # implicit effects (ESP traffic) must not kill it
        src = "movi esi, 7\ncall @helper\nmov eax, esi\nret"
        lv = liveness(cfg_of(src))
        assert ESI in lv.before[1]
        assert ESI in lv.after[1]
        # while the stack pointer stays live through the call's implicit
        # read/write pair
        assert ESP in lv.before[1]
