"""Linter diagnostics: one fixture per stable code, plus the exemptions."""

from repro.cpu.assembler import assemble_function
from repro.cpu.isa import INSN_SIZE, Insn, Op, encode
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.lint import (
    LINT_CODES,
    lint_cfg,
    lint_function,
    lint_program,
)


def lint_source(source: str):
    return lint_function(assemble_function("f", source))


def codes(diags):
    return [d.code for d in diags]


class TestSA001DeadWrite:
    def test_fires_on_overwritten_constant(self):
        diags = lint_source("movi eax, 1\nmovi ebx, 5\nret")
        assert codes(diags) == ["SA001"]
        assert "ebx" in diags[0].message
        assert diags[0].insn_index == 1

    def test_fires_on_write_shadowed_before_read(self):
        diags = lint_source("movi ecx, 1\nmovi ecx, 2\nmov eax, ecx\nret")
        assert codes(diags) == ["SA001"]
        assert diags[0].insn_index == 0

    def test_clean_when_value_is_read(self):
        assert lint_source("movi ecx, 1\nmov eax, ecx\nret") == []

    def test_pop_deallocation_is_exempt(self):
        # the popped value is dead, but the pop exists for ESP movement
        assert lint_source("movi eax, 1\npush eax\npop ecx\nret") == []

    def test_return_value_is_not_dead(self):
        assert lint_source("movi eax, 7\nret") == []

    def test_frame_pointer_writes_are_exempt(self):
        assert (
            lint_source("push ebp\nmov ebp, esp\nmovi eax, 1\n"
                        "mov esp, ebp\npop ebp\nret")
            == []
        )

    def test_write_read_only_on_one_arm_is_live(self):
        # a value read on one branch arm is not a dead write
        src = """
            movi ecx, 3
            cmpi eax, 0
            jz skip
            mov eax, ecx
        skip:
            ret
        """
        diags = [d for d in lint_source(src) if d.code == "SA001"]
        assert diags == []


class TestSA002UseBeforeDef:
    def test_fires_on_uninitialized_read(self):
        diags = lint_source("mov eax, ecx\nret")
        assert codes(diags) == ["SA002"]
        assert "ecx" in diags[0].message

    def test_convention_registers_are_predefined(self):
        # esp/ebp come from the calling convention: the standard
        # prologue is not a use-before-def
        assert lint_source("push ebp\nmov ebp, esp\nmovi eax, 0\n"
                           "mov esp, ebp\npop ebp\nret") == []

    def test_partial_path_definition_still_fires(self):
        src = """
            cmpi eax, 0
            jz skip
            movi ecx, 1
        skip:
            mov eax, ecx
            ret
        """
        diags = [d for d in lint_source(src) if d.code == "SA002"]
        # eax is also read before def by the cmpi; ecx read at the join
        # has a def on only one path - but may-reaching keeps it: only
        # the *no-def-on-any-path* case fires
        assert [d for d in diags if "ecx" in d.message] == []
        assert [d for d in diags if "eax" in d.message] != []


class TestSA003Unreachable:
    def test_fires_on_skipped_code(self):
        diags = lint_source("movi eax, 1\njmp end\nmovi ecx, 2\nend: ret")
        assert "SA003" in codes(diags)

    def test_code_after_ret_is_unreachable(self):
        diags = lint_source("movi eax, 1\nret\nmovi ecx, 2\nmov eax, ecx\nret")
        assert codes(diags) == ["SA003"]

    def test_no_secondary_noise_from_dead_code(self):
        # the unreachable block contains a dead write and an undefined
        # read; only SA003 should be reported for it
        diags = lint_source("movi eax, 1\nret\nmov ebx, edi\nret")
        assert codes(diags) == ["SA003"]


class TestSA004StackBalance:
    def test_fires_on_leaked_slot(self):
        diags = lint_source("movi eax, 1\npush eax\nret")
        assert "SA004" in codes(diags)
        assert "unpopped" in [d for d in diags if d.code == "SA004"][0].message

    def test_fires_on_underflow(self):
        diags = lint_source("pop eax\nret")
        assert "SA004" in codes(diags)

    def test_frame_idiom_is_understood(self):
        # push without matching pop, but the epilogue restores ESP
        # through the frame pointer: balanced
        src = """
            push ebp
            mov ebp, esp
            movi eax, 3
            push eax
            push eax
            mov esp, ebp
            pop ebp
            ret
        """
        assert [d for d in lint_source(src) if d.code == "SA004"] == []

    def test_balanced_loop_body(self):
        src = """
            movi eax, 0
            movi ecx, 0
        loop:
            push ecx
            addi eax, 1
            pop ecx
            addi ecx, 1
            cmpi ecx, 4
            jl loop
            ret
        """
        assert lint_source(src) == []


class TestSA005BranchToNowhere:
    def test_fires_on_out_of_range_target(self):
        code = encode(Insn(Op.JMP, imm=32 * INSN_SIZE)) + encode(Insn(Op.RET))
        diags = lint_cfg(ControlFlowGraph.from_code("f", code))
        assert "SA005" in codes(diags)

    def test_fires_on_misaligned_target(self):
        code = encode(Insn(Op.JZ, imm=INSN_SIZE // 2)) + encode(Insn(Op.RET))
        diags = lint_cfg(ControlFlowGraph.from_code("f", code))
        assert codes(diags) == ["SA005"]

    def test_label_branches_are_clean(self):
        assert lint_source("loop: addi eax, 1\ncmpi eax, 3\njl loop\nret") == []


class TestHarness:
    def test_all_codes_documented(self):
        assert set(LINT_CODES) == {"SA001", "SA002", "SA003", "SA004", "SA005"}

    def test_lint_program_aggregates(self):
        from repro.cpu.assembler import Program

        prog = Program()
        prog.add("good", "movi eax, 1\nret")
        prog.add("bad", "movi ebx, 5\nret")
        diags = lint_program(prog)
        assert codes(diags) == ["SA001"]
        assert diags[0].function == "bad"

    def test_diagnostic_renders_with_location(self):
        d = lint_source("movi ebx, 5\nret")[0]
        assert str(d) == "SA001 f+0: MOVI writes ebx but the value is never read"
