"""CI gate: every shipped kernel must lint clean.

This is the static analogue of the golden-output tests - a kernel edit
that introduces a dead write, an unreachable block or a stack imbalance
fails here before any campaign runs.  If a future kernel needs an
exemption, justify it inline the way the POP-deallocation rule is
justified in :mod:`repro.staticanalysis.lint`, don't weaken the gate.
"""

from repro.staticanalysis.lint import iter_shipped_kernels, lint_function


def test_shipped_kernel_inventory_is_complete():
    owners = {owner for owner, _ in iter_shipped_kernels()}
    assert owners == {"wavetoy", "moldyn", "climate", "ablation"}
    names = [fn.name for _, fn in iter_shipped_kernels()]
    assert len(names) == len(set(names))  # no duplicates
    assert "wt_step" in names and "opt_kernel" in names


def test_all_shipped_kernels_lint_clean():
    failures = []
    for owner, fn in iter_shipped_kernels():
        for diag in lint_function(fn):
            failures.append(f"{owner}/{diag}")
    assert failures == [], "\n".join(failures)
