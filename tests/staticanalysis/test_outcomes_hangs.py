"""Unit tests for the loop-bound (hang-prone) analysis."""

import pytest

from repro.cpu.assembler import assemble_function
from repro.cpu.registers import EAX, ECX
from repro.staticanalysis.cfg import ControlFlowGraph
from repro.staticanalysis.outcomes.hangs import HangAnalysis, hang_bit_floor

#: canonical up-counting loop: ecx counts 0..99, eax accumulates.
COUNTED_LOOP = (
    "movi ecx, 0\n"
    "movi eax, 0\n"
    "loop: addi eax, 3\n"
    "addi ecx, 1\n"
    "cmpi ecx, 100\n"
    "jl loop\n"
    "ret"
)

#: same loop shape, but ecx also indexes memory inside the body.
INDEXED_LOOP = (
    "movi ecx, 64\n"
    "movi eax, 0\n"
    "loop: load edx, [ecx]\n"
    "add eax, edx\n"
    "addi ecx, 4\n"
    "cmpi ecx, 256\n"
    "jl loop\n"
    "ret"
)

#: exact-match exit: iteration continues while ecx != 0 (JNZ).
EXACT_LOOP = (
    "movi ecx, 16\n"
    "loop: addi ecx, -1\n"
    "cmpi ecx, 0\n"
    "jnz loop\n"
    "ret"
)


def analyze(source: str) -> HangAnalysis:
    cfg = ControlFlowGraph.from_function(assemble_function("f", source))
    return HangAnalysis(cfg)


class TestLoopDiscovery:
    def test_counted_loop_is_found(self):
        ha = analyze(COUNTED_LOOP)
        assert len(ha.loops) == 1

    def test_straight_line_code_has_no_loops(self):
        ha = analyze("movi eax, 1\naddi eax, 2\nret")
        assert ha.loops == []

    def test_counter_bound_increment_and_branch_sites(self):
        ha = analyze(COUNTED_LOOP)
        (loop,) = ha.loops
        # insn indices: 2 addi eax / 3 addi ecx / 4 cmpi / 5 jl
        assert loop.pure_counters == frozenset({ECX})
        assert loop.increment_insns == frozenset({3})
        assert loop.bound_cmp_insns == frozenset({4})
        assert loop.control_branch_insns == frozenset({5})
        assert not loop.exact_exit

    def test_accumulator_is_not_a_counter(self):
        # eax is stepped every iteration but never tested by the
        # loop-controlling comparison: corrupting it is an SDC, not a
        # hang.
        ha = analyze(COUNTED_LOOP)
        (loop,) = ha.loops
        assert EAX not in loop.counters

    def test_memory_indexed_counter_is_excluded(self):
        # ecx feeds the LOAD address: corrupting it faults on the next
        # dereference instead of stalling, so it must not enter the
        # hang-prone register stratum.
        ha = analyze(INDEXED_LOOP)
        (loop,) = ha.loops
        assert loop.memory_indexed_counters == frozenset({ECX})
        assert ha.pure_counter_regs() == frozenset()

    def test_exact_exit_detection(self):
        assert analyze(EXACT_LOOP).loops[0].exact_exit
        assert not analyze(COUNTED_LOOP).loops[0].exact_exit


class TestHangBitFloor:
    @pytest.mark.parametrize(
        "limit,floor",
        [(1, 0), (2, 1), (3, 2), (100, 7), (128, 7), (129, 8), (10_000, 14)],
    )
    def test_floor_values(self, limit, floor):
        assert hang_bit_floor(limit) == floor

    def test_floor_is_sufficient(self):
        # adding 2^floor iterations must exceed the block budget
        for limit in (1, 2, 3, 100, 129, 10_000):
            assert (1 << hang_bit_floor(limit)) >= limit

    def test_floor_rejects_nonpositive_budgets(self):
        with pytest.raises(ValueError):
            hang_bit_floor(0)


class TestHangProneTextBits:
    def test_branch_opcode_flips_into_other_branches(self):
        ha = analyze(COUNTED_LOOP)
        bits = ha.hang_prone_text_bits(block_limit=100)
        # JL=0x33 ^ 1 = 0x32 = JNZ: still a branch, iteration decision
        # inverted while control stays in the function.
        assert (5, 0) in bits

    def test_bound_bits_respect_the_floor(self):
        ha = analyze(COUNTED_LOOP)
        bits = ha.hang_prone_text_bits(block_limit=100)
        floor = hang_bit_floor(100)
        cmp_bits = {b - 32 for (i, b) in bits if i == 4 and b >= 32}
        # bit 7 is the floor and clear in 100 (0b1100100): flagged.
        assert floor == 7 and 7 in cmp_bits
        # bits 0 and 1 are clear in 100 but below the floor: a flip adds
        # at most 2 iterations, nowhere near the budget.
        assert 0 not in cmp_bits and 1 not in cmp_bits
        # set bits never enter the stratum (clearing a bound bit only
        # shortens the loop); 100 has bit 2 set.
        assert 2 not in cmp_bits
        # the sign bit always qualifies.
        assert 31 in cmp_bits

    def test_increment_zeroing_bit_is_flagged(self):
        # the increment imm==1 is exactly 2^0: clearing bit 0 zeroes the
        # step and the counter never advances.
        ha = analyze(COUNTED_LOOP)
        bits = ha.hang_prone_text_bits(block_limit=100)
        assert (3, 32 + 0) in bits
        assert (3, 32 + 31) in bits  # sign flip

    def test_larger_budget_prunes_low_bound_bits(self):
        ha = analyze(COUNTED_LOOP)
        small = ha.hang_prone_text_bits(block_limit=100)
        large = ha.hang_prone_text_bits(block_limit=100_000)
        assert large <= small
        # bit 7 adds only 128 iterations: not a hang under a 100k budget
        assert (4, 32 + 7) in small and (4, 32 + 7) not in large
