"""Dynamic validation of the predicted strata (the E18 benchmark).

A reduced wavetoy run keeps tier-1 runtime bounded; the full suite
(three apps, larger quotas) is the ``validate_suite`` benchmark in
EXPERIMENTS.md E18.
"""

import pytest

from repro.staticanalysis.outcomes import Stratum, validate_app
from repro.staticanalysis.outcomes.validation import (
    ENRICHMENT_FLOOR,
    MASKED_PRECISION_FLOOR,
)


@pytest.fixture(scope="module")
def validation():
    return validate_app("wavetoy", per_stratum=8, base_per_region=10)


class TestWavetoyValidation:
    def test_masked_precision_is_perfect(self, validation):
        row = validation.row(Stratum.MASKED)
        assert row is not None and row.trials > 0
        assert validation.masked_precision >= MASKED_PRECISION_FLOOR == 1.0

    def test_crash_stratum_is_enriched(self, validation):
        row = validation.row(Stratum.CRASH_PRONE)
        assert row is not None and row.trials > 0
        assert validation.crash_enrichment >= ENRICHMENT_FLOOR

    def test_hang_stratum_is_enriched(self, validation):
        row = validation.row(Stratum.HANG_PRONE)
        assert row is not None and row.trials > 0
        # inf when the uniform base sample shows no hangs at all - the
        # strongest possible separation
        assert validation.hang_enrichment >= ENRICHMENT_FLOOR

    def test_render_reports_a_pass(self, validation):
        assert validation.passed
        text = validation.render()
        assert text.startswith("[wavetoy]")
        assert text.endswith("PASS")
