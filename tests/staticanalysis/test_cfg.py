"""CFG construction: leaders, edges, reachability, loop depths."""

import pytest

from repro.cpu.assembler import assemble_function
from repro.cpu.isa import INSN_SIZE, Insn, Op, encode
from repro.staticanalysis.cfg import CFGError, ControlFlowGraph, decode_function

STRAIGHT = """
    movi eax, 1
    addi eax, 2
    ret
"""

DIAMOND = """
    cmpi eax, 0
    jz else_arm
    movi ecx, 1
    jmp join
else_arm:
    movi ecx, 2
join:
    mov eax, ecx
    ret
"""

LOOP = """
    movi eax, 0
    movi ecx, 0
loop:
    add eax, ecx
    addi ecx, 1
    cmpi ecx, 10
    jl loop
    ret
"""

NESTED = """
    movi eax, 0
    movi edx, 0
outer:
    movi ecx, 0
inner:
    add eax, ecx
    addi ecx, 1
    cmpi ecx, 4
    jl inner
    addi edx, 1
    cmpi edx, 4
    jl outer
    ret
"""


def cfg_of(source: str) -> ControlFlowGraph:
    return ControlFlowGraph.from_function(assemble_function("f", source))


class TestStraightLine:
    def test_single_block(self):
        cfg = cfg_of(STRAIGHT)
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].succs == []
        assert cfg.blocks[0].loop_depth == 0

    def test_block_covers_all_insns(self):
        cfg = cfg_of(STRAIGHT)
        assert list(cfg.blocks[0].insn_indices()) == [0, 1, 2]


class TestDiamond:
    def test_four_blocks(self):
        cfg = cfg_of(DIAMOND)
        assert len(cfg.blocks) == 4

    def test_edges(self):
        cfg = cfg_of(DIAMOND)
        entry, then, els, join = cfg.blocks
        assert sorted(entry.succs) == [then.index, els.index]
        assert then.succs == [join.index]
        assert els.succs == [join.index]
        assert join.succs == []
        assert sorted(join.preds) == sorted([then.index, els.index])

    def test_no_loops(self):
        cfg = cfg_of(DIAMOND)
        assert all(b.loop_depth == 0 for b in cfg.blocks)


class TestLoop:
    def test_three_blocks(self):
        cfg = cfg_of(LOOP)
        assert len(cfg.blocks) == 3

    def test_back_edge(self):
        cfg = cfg_of(LOOP)
        body = cfg.blocks[1]
        assert body.index in body.succs  # self loop
        assert body.loop_depth == 1

    def test_pre_and_post_are_depth_zero(self):
        cfg = cfg_of(LOOP)
        assert cfg.blocks[0].loop_depth == 0
        assert cfg.blocks[-1].loop_depth == 0

    def test_nested_depths(self):
        cfg = cfg_of(NESTED)
        depths = {b.loop_depth for b in cfg.blocks}
        assert max(depths) == 2  # inner body is two loops deep
        inner = max(cfg.blocks, key=lambda b: b.loop_depth)
        assert cfg.insns[inner.start].op is Op.ADD


class TestStructure:
    def test_call_does_not_end_a_block(self):
        fn = assemble_function("f", "call @g\nmovi eax, 1\nret")
        cfg = ControlFlowGraph.from_function(fn)
        assert len(cfg.blocks) == 1
        assert 0 in cfg.relocated

    def test_hlt_terminates(self):
        code = encode(Insn(Op.HLT)) + encode(Insn(Op.NOP)) + encode(
            Insn(Op.RET)
        )
        cfg = ControlFlowGraph.from_code("f", code)
        assert cfg.blocks[0].succs == []
        assert cfg.blocks[1].index not in cfg.reachable()

    def test_unreachable_block_detected(self):
        cfg = cfg_of("jmp end\nmovi eax, 1\nend: ret")
        assert len(cfg.reachable()) == 2
        assert len(cfg.blocks) == 3

    def test_bad_branch_target_recorded(self):
        code = encode(Insn(Op.JMP, imm=10 * INSN_SIZE)) + encode(Insn(Op.RET))
        cfg = ControlFlowGraph.from_code("f", code)
        assert cfg.bad_branch_targets == [(0, 10 * INSN_SIZE)]
        assert cfg.blocks[0].succs == []

    def test_misaligned_branch_target_recorded(self):
        code = encode(Insn(Op.JZ, imm=4)) + encode(Insn(Op.RET))
        cfg = ControlFlowGraph.from_code("f", code)
        assert cfg.bad_branch_targets == [(0, 4)]
        # the conditional still falls through
        assert cfg.blocks[0].succs == [1]

    def test_decode_matches_assembler(self):
        fn = assemble_function("f", LOOP)
        assert decode_function(fn.code) == fn.insns

    def test_ragged_code_rejected(self):
        with pytest.raises(CFGError):
            decode_function(b"\x01" * 12)

    def test_empty_function_rejected(self):
        with pytest.raises(CFGError):
            ControlFlowGraph.from_code("f", b"")

    def test_block_of_is_consistent(self):
        cfg = cfg_of(NESTED)
        for block in cfg.blocks:
            for i in block.insn_indices():
                assert cfg.block_of[i] == block.index
