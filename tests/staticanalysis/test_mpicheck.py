"""The static MPI communication analyzer (skeleton, match graph,
SA1xx passes, vulnerability map)."""

import pytest

from repro.mpi.simulator import Job, JobConfig, JobStatus
from repro.staticanalysis.mpicheck import (
    BuggyApp,
    build_match_graph,
    build_vulnerability_map,
    check_skeleton,
    extract_skeleton,
)
from repro.staticanalysis.mpicheck.fixture import BUG_VARIANTS
from tests.conftest import SMALL_NPROCS, small_climate, small_moldyn, small_wavetoy

SMALL_APPS = {
    "wavetoy": small_wavetoy,
    "moldyn": small_moldyn,
    "climate": small_climate,
}


@pytest.fixture(scope="module")
def skeletons():
    """One dry run per small app, shared across this module's tests."""
    return {
        name: extract_skeleton(factory(), SMALL_NPROCS)
        for name, factory in SMALL_APPS.items()
    }


# ----------------------------------------------------------------------
# skeleton extraction
# ----------------------------------------------------------------------
class TestExtraction:
    def test_dry_run_completes_without_kernels(self, skeletons):
        for name, sk in skeletons.items():
            assert sk.status is JobStatus.COMPLETED, name
            assert sk.kernel_calls, f"{name} recorded no kernel calls"
            assert sk.events, f"{name} recorded no MPI events"
            assert sk.packets, f"{name} recorded no packets"

    def test_dry_run_is_byte_faithful(self):
        """The tap must see exactly the traffic a real run produces."""
        app = small_wavetoy()
        sk = extract_skeleton(app, SMALL_NPROCS)
        job = Job(small_wavetoy(), JobConfig(nprocs=SMALL_NPROCS))
        assert job.run().completed
        real = [job.endpoints[r].bytes_received for r in range(SMALL_NPROCS)]
        tapped = [
            sum(p.size for p in sk.packets if p.dst == r)
            for r in range(SMALL_NPROCS)
        ]
        assert tapped == real

    def test_events_carry_statuses_and_waits(self, skeletons):
        sk = skeletons["moldyn"]
        recvs = [e for e in sk.recvs() if e.call == "recv"]
        assert recvs and all(e.completed and e.status is not None for e in recvs)
        isends = [e for e in sk.sends() if e.call == "isend"]
        assert isends and all(e.waited and e.request is not None for e in isends)

    def test_sendrecv_splits_into_both_halves(self, skeletons):
        sk = skeletons["wavetoy"]
        halves = [e for e in sk.events if e.call == "sendrecv"]
        kinds = {e.kind for e in halves}
        assert kinds == {"send", "recv"}
        assert all(e.completed for e in halves)

    def test_seq_is_globally_unique_and_ordered(self, skeletons):
        for sk in skeletons.values():
            seqs = [e.seq for e in sk.events]
            assert seqs == sorted(seqs)
            assert len(seqs) == len(set(seqs))

    def test_extraction_is_deterministic(self):
        one = extract_skeleton(small_moldyn(), SMALL_NPROCS)
        two = extract_skeleton(small_moldyn(), SMALL_NPROCS)
        key = lambda sk: [
            (e.seq, e.rank, e.call, e.kind, e.peer, e.tag, e.count) for e in sk.events
        ]
        assert key(one) == key(two)
        assert one.packets == two.packets


# ----------------------------------------------------------------------
# match graph
# ----------------------------------------------------------------------
class TestMatchGraph:
    def test_clean_apps_fully_match(self, skeletons):
        for name, sk in skeletons.items():
            graph = build_match_graph(sk)
            assert graph.unmatched_sends == [], name
            assert graph.unmatched_recvs == [], name
            assert len(graph.edges) == len(sk.recvs()), name

    def test_edges_pair_consistent_endpoints(self, skeletons):
        for sk in skeletons.values():
            for edge in build_match_graph(sk).edges:
                assert edge.send.peer == edge.recv.rank
                assert not edge.truncated
                assert not edge.signature_mismatch


# ----------------------------------------------------------------------
# SA1xx passes
# ----------------------------------------------------------------------
#: Each seeded bug and the diagnostic it must trigger.
BUG_TO_CODE = {
    "deadlock": "SA101",
    "orphan": "SA103",
    "type-mismatch": "SA104",
    "truncation": "SA105",
    "wildcard": "SA106",
    "leak": "SA107",
    "collective": "SA108",
}


class TestPasses:
    def test_shipped_apps_are_clean(self, skeletons):
        for name, sk in skeletons.items():
            assert check_skeleton(sk) == [], name

    @pytest.mark.parametrize("bug", sorted(BUG_TO_CODE))
    def test_every_bug_triggers_its_code(self, bug):
        sk = extract_skeleton(BuggyApp(bug=bug), SMALL_NPROCS)
        codes = {d.code for d in check_skeleton(sk)}
        assert BUG_TO_CODE[bug] in codes

    def test_deadlock_names_the_cycle(self):
        sk = extract_skeleton(BuggyApp(bug="deadlock"), SMALL_NPROCS)
        assert sk.status is JobStatus.HUNG
        (cycle,) = [d for d in check_skeleton(sk) if d.code == "SA101"]
        assert "ranks [0, 1]" in cycle.message
        # The head-to-head receives are also unmatched on both sides.
        unmatched = [d for d in check_skeleton(sk) if d.code == "SA102"]
        assert {d.function for d in unmatched} == {
            "buggy:rank0",
            "buggy:rank1",
        }

    def test_salad_variant_accumulates_nonfatal_bugs(self):
        sk = extract_skeleton(BuggyApp(), SMALL_NPROCS)  # default: salad
        assert sk.status is JobStatus.COMPLETED
        codes = {d.code for d in check_skeleton(sk)}
        assert codes == {"SA103", "SA104", "SA106", "SA107"}

    def test_every_sa1xx_code_is_reachable(self):
        seen = set()
        for bug in BUG_VARIANTS:
            sk = extract_skeleton(BuggyApp(bug=bug), SMALL_NPROCS)
            seen |= {d.code for d in check_skeleton(sk)}
        from repro.staticanalysis.mpicheck import MPI_LINT_CODES

        assert seen == set(MPI_LINT_CODES)

    def test_bugs_work_at_two_ranks(self):
        for bug in BUG_VARIANTS:
            sk = extract_skeleton(BuggyApp(bug=bug), 2)
            if bug in BUG_TO_CODE:
                assert BUG_TO_CODE[bug] in {d.code for d in check_skeleton(sk)}

    def test_diagnostics_are_sorted_and_deduped(self):
        sk = extract_skeleton(BuggyApp(), SMALL_NPROCS)
        diags = check_skeleton(sk)
        keys = [(d.function, d.insn_index, d.code, d.message) for d in diags]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
        assert diags == check_skeleton(sk)  # reruns are byte-identical

    def test_crash_suppresses_pending_artifacts(self):
        """A crashed job's in-flight operations are not SA102/SA103."""
        sk = extract_skeleton(BuggyApp(bug="truncation"), SMALL_NPROCS)
        assert sk.status is JobStatus.CRASHED
        codes = {d.code for d in check_skeleton(sk)}
        assert codes == {"SA105"}


# ----------------------------------------------------------------------
# vulnerability map
# ----------------------------------------------------------------------
class TestVulnerabilityMap:
    def test_byte_classes_partition_the_stream(self, skeletons):
        for name, sk in skeletons.items():
            vmap = build_vulnerability_map(sk)
            for rank in vmap.ranks:
                assert sum(rank.byte_classes.values()) == rank.total_bytes
            assert vmap.total_bytes == sum(p.size for p in sk.packets), name

    def test_message_classes_reach_the_map(self, skeletons):
        classes = build_vulnerability_map(skeletons["moldyn"]).byte_class_totals()
        assert classes.get("checksummed", 0) > 0  # coordinate patches
        assert classes.get("data", 0) > 0  # force messages
        classes = build_vulnerability_map(skeletons["climate"]).byte_class_totals()
        assert classes.get("control", 0) > 0  # work descriptors

    def test_unchecksummed_moldyn_reclassifies(self):
        sk = extract_skeleton(small_moldyn(checksums=False), SMALL_NPROCS)
        classes = build_vulnerability_map(sk).byte_class_totals()
        assert "checksummed" not in classes

    def test_structural_ordering_matches_table2(self):
        """The headline prediction at paper-default parameters:
        climate > moldyn > wavetoy structural sensitivity."""
        from repro.apps import APPLICATION_SUITE

        scores = {}
        for name, cls in APPLICATION_SUITE.items():
            sk = extract_skeleton(cls(), 4)
            scores[name] = build_vulnerability_map(sk).structural_score
        assert scores["climate"] > scores["moldyn"] > scores["wavetoy"]

    def test_scores_are_probabilities(self, skeletons):
        for sk in skeletons.values():
            vmap = build_vulnerability_map(sk)
            for rank in vmap.ranks:
                assert 0.0 <= rank.structural_score <= 1.0
                assert 0.0 <= rank.detected_score <= 1.0
                assert 0.0 <= rank.header_fraction <= 1.0

    def test_report_mentions_every_class(self, skeletons):
        vmap = build_vulnerability_map(skeletons["climate"])
        text = vmap.report()
        for klass in vmap.byte_class_totals():
            assert klass in text
