"""The outcome predictor on a real linked application (wavetoy)."""

import pytest

from repro.cpu.registers import EBP, ESP
from repro.injection.campaign import Campaign
from repro.injection.faults import FaultSpec, Region
from repro.memory.layout import STATIC_IMAGE_WINDOW
from repro.staticanalysis.outcomes import (
    Stratum,
    audit_outcomes,
    build_probe,
    hang_bit_floor,
    stack_window,
)


@pytest.fixture(scope="module")
def campaign():
    return Campaign.from_registry("wavetoy", nprocs=2)


@pytest.fixture(scope="module")
def predictor(campaign):
    return campaign.outcome_predictor()


@pytest.fixture(scope="module")
def probe(predictor):
    return build_probe(predictor)


class TestPredictorStructure:
    def test_windows_come_from_the_layout_authority(self, predictor):
        assert predictor.windows == (STATIC_IMAGE_WINDOW, stack_window())

    def test_hang_floor_matches_the_block_budget(self, predictor):
        assert predictor.hang_floor == hang_bit_floor(predictor.block_limit)

    def test_every_kernel_is_analyzed(self, campaign, predictor):
        program = campaign.app_factory().program()
        assert set(predictor.kernels) == set(program.functions)


class TestStratumContracts:
    def test_stack_pointer_high_bits_are_crash_prone(self, predictor):
        # the window proof from the interval domain: a high flip of
        # ESP/EBP provably leaves every mapped segment
        for reg in (ESP, EBP):
            assert predictor.register_table[reg][30] is Stratum.CRASH_PRONE

    def test_stack_pointer_low_bits_are_not_claimed(self, predictor):
        # a low flip stays inside the stack window: no proof, no claim
        for reg in (ESP, EBP):
            assert predictor.register_table[reg][2] is Stratum.UNCERTAIN

    def test_heap_and_stack_stay_uncertain(self, predictor):
        # these regions resolve their targets at fire time: statically
        # out of reach, and claiming otherwise would dilute the strata
        heap = FaultSpec(Region.HEAP, 0, time_blocks=1, bit=3, address=0)
        stack = FaultSpec(Region.STACK, 0, time_blocks=1, bit=3, address=0)
        assert predictor.stratum(heap) is Stratum.UNCERTAIN
        assert predictor.stratum(stack) is Stratum.UNCERTAIN

    def test_masked_claims_are_oracle_proofs(self, predictor):
        # precision 1.0 by construction: every MASKED verdict must be
        # backed by the masking oracle on the very same spec
        for reg in range(8):
            for bit in range(32):
                spec = FaultSpec(
                    Region.REGULAR_REG, 0, time_blocks=1,
                    bit=bit, reg_index=reg,
                )
                if predictor.stratum(spec) is Stratum.MASKED:
                    assert predictor.oracle.verdict(spec).masked


class TestProbeAndAudit:
    def test_wavetoy_audit_is_clean(self, probe):
        assert audit_outcomes(probe) == []

    def test_probe_masked_counts_are_oracle_proven(self, probe):
        for region in probe.regions:
            assert region.count(Stratum.MASKED) == region.masked_oracle_proven

    def test_probe_covers_the_steerable_regions(self, probe):
        names = [r.region for r in probe.regions]
        assert names == ["regular_reg", "text", "data", "bss", "message"]
        for region in probe.regions:
            assert region.total > 0

    def test_register_probe_counts_the_whole_file(self, probe):
        (regs,) = [r for r in probe.regions if r.region == "regular_reg"]
        assert regs.total == 8 * 32

    def test_probe_is_deterministic(self, predictor, probe):
        assert build_probe(predictor) == probe

    def test_text_probe_finds_crash_and_hang_strata(self, probe):
        # the acceptance surface: the text image must contribute both
        # strata, or stratified sampling has nothing to oversample
        (text,) = [r for r in probe.regions if r.region == "text"]
        assert text.count(Stratum.CRASH_PRONE) > 0
        assert text.count(Stratum.HANG_PRONE) > 0

    def test_audit_diagnostics_are_sorted_and_deduped(self, probe):
        import dataclasses

        from repro.staticanalysis.lint import sort_diagnostics
        from repro.staticanalysis.outcomes.passes import RegionProbe

        # break two invariants at once and check the canonical order
        regions = []
        for r in probe.regions:
            if r.region == "regular_reg":
                regions.append(
                    dataclasses.replace(
                        r,
                        strata=(("masked", 5), ("uncertain", r.total - 5)),
                        masked_oracle_proven=0,
                    )
                )
            else:
                regions.append(r)
        broken = dataclasses.replace(probe, regions=tuple(regions), hang_floor=99)
        diags = audit_outcomes(broken)
        # canonical order sorts by the app:token label first, so the
        # hang-floor drift precedes the regular_reg masked leak
        assert [d.code for d in diags] == ["SA305", "SA303"]
        assert diags == sort_diagnostics(diags)
