"""SA2xx audit behaviour: fixtures fire, shipped apps stay clean, and
exemptions suppress without hiding."""

from dataclasses import replace

import pytest

from repro.staticanalysis.propagation import (
    PROPAGATION_LINT_CODES,
    PropagationCone,
    SiteClass,
    TaintAnalysis,
    audit_app,
    class_counts,
    classify_cone,
    coverage_for,
    kernel_sites,
)
from repro.staticanalysis.propagation.fixtures import FIXTURES

APPS = ("wavetoy", "moldyn", "climate")


class TestFixturesTrigger:
    @pytest.mark.parametrize("code", sorted(PROPAGATION_LINT_CODES))
    def test_fixture_fires_its_code(self, code):
        open_findings, _ = audit_app(FIXTURES[code]())
        assert code in {d.code for d in open_findings}

    def test_every_code_has_a_fixture(self):
        assert set(FIXTURES) == set(PROPAGATION_LINT_CODES)


class TestShippedAppsClean:
    @pytest.mark.parametrize("app", APPS)
    def test_no_open_findings(self, app):
        open_findings, _ = audit_app(coverage_for(app))
        assert open_findings == []

    def test_wavetoy_owns_its_gaps_visibly(self):
        # no detectors at all: the gaps are suppressed, not absent
        _, suppressed = audit_app(coverage_for("wavetoy"))
        codes = {d.code for d in suppressed}
        assert "SA201" in codes and "SA203" in codes

    def test_stripping_exemptions_resurfaces_findings(self):
        cov = coverage_for("wavetoy")
        stripped = replace(cov, model=replace(cov.model, accepted=()))
        open_findings, suppressed = audit_app(stripped)
        assert suppressed == []
        assert {d.code for d in open_findings} >= {"SA201", "SA203"}

    def test_stale_exemption_is_reported(self):
        from repro.staticanalysis.propagation.model import AcceptedRisk

        cov = coverage_for("moldyn")  # audits clean with no exemptions
        stale = replace(
            cov,
            model=replace(
                cov.model,
                accepted=(AcceptedRisk("SA201", "heap", "not real"),),
            ),
        )
        open_findings, _ = audit_app(stale)
        assert [d.code for d in open_findings] == ["SA204"]
        assert "stale" in open_findings[0].message

    def test_deterministic_order(self):
        cov = FIXTURES["SA203"]()
        assert audit_app(cov) == audit_app(cov)


class TestSiteClassification:
    def test_class_counts_always_lists_all_classes(self):
        assert set(class_counts([])) == {c.value for c in SiteClass}

    @pytest.mark.parametrize("app,kernel", [("wavetoy", "wt_step")])
    def test_kernel_sites_cover_every_written_gpr(self, app, kernel):
        cov = coverage_for(app)
        from repro.apps import APPLICATION_SUITE

        fn = APPLICATION_SUITE[app]().program().functions[kernel]
        analysis = TaintAnalysis.from_function(fn)
        sites = kernel_sites(analysis, cov)
        expected = sum(
            len(analysis.written_gprs(i))
            for i in range(len(analysis.cfg.insns))
        )
        assert len(sites) == expected
        assert sites == sorted(
            sites, key=lambda s: (s.insn_index, s.reg)
        )

    def test_masked_cone_classifies_masked(self):
        cone = PropagationCone("f", "s", frozenset(), frozenset())
        cov = coverage_for("moldyn")
        assert classify_cone(cone, cov) is SiteClass.PROVABLY_MASKED

    def test_branch_taint_beats_coverage(self):
        cone = PropagationCone(
            "f", "s", frozenset({"branch"}), frozenset({"branch", "heap"})
        )
        cov = coverage_for("moldyn")
        assert classify_cone(cone, cov) is SiteClass.CONTROL_FLOW_RISK

    def test_heap_escape_under_moldyn_detectors_is_covered(self):
        cone = PropagationCone(
            "f", "s", frozenset({"heap"}), frozenset({"heap"})
        )
        assert (
            classify_cone(cone, coverage_for("moldyn"))
            is SiteClass.DETECTOR_COVERED
        )

    def test_heap_escape_without_detectors_is_sdc(self):
        cone = PropagationCone(
            "f", "s", frozenset({"heap"}), frozenset({"heap"})
        )
        assert (
            classify_cone(cone, coverage_for("wavetoy"))
            is SiteClass.SDC_RISK
        )

    def test_escape_to_unread_state_is_masked(self):
        # stack escapes with no route to output: nothing downstream reads
        cone = PropagationCone(
            "f", "s", frozenset({"stackmem"}), frozenset({"stack"})
        )
        assert (
            classify_cone(cone, coverage_for("wavetoy"))
            is SiteClass.PROVABLY_MASKED
        )
