"""The ``python -m repro analyze`` subcommand."""

import json

from repro.__main__ import main


class TestAnalyze:
    def test_app_target_reports_every_kernel(self, capsys):
        assert main(["analyze", "wavetoy"]) == 0
        out = capsys.readouterr().out
        for kernel in ("wt_step", "wt_init", "wt_norm", "wt_startup"):
            assert kernel in out
        assert "program AVF" in out

    def test_single_kernel_target(self, capsys):
        assert main(["analyze", "wt_norm"]) == 0
        out = capsys.readouterr().out
        assert "wt_norm" in out
        assert "wt_step" not in out

    def test_json_output_has_register_scores(self, capsys):
        assert main(["analyze", "wavetoy", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {f["name"] for f in payload["functions"]}
        assert "wt_step" in names
        step = next(f for f in payload["functions"] if f["name"] == "wt_step")
        assert set(step["register_avf"]) == {
            "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
        }
        assert 0.0 <= step["text_avf"] <= 1.0

    def test_lint_clean_apps_exit_zero(self, capsys):
        for target in ("wavetoy", "moldyn", "climate", "ablation"):
            assert main(["analyze", "--lint", target]) == 0
            assert "0 diagnostic(s)" in capsys.readouterr().out

    def test_lint_json_payload(self, capsys):
        assert main(["analyze", "--lint", "--json", "ablation"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []

    def test_unknown_target_is_an_error(self, capsys):
        assert main(["analyze", "nonesuch"]) == 2
        assert "unknown analysis target" in capsys.readouterr().err
