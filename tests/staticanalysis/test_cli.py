"""The ``python -m repro analyze`` subcommand."""

import json

from repro.__main__ import ANALYZE_SCHEMA_VERSION, main


class TestAnalyze:
    def test_app_target_reports_every_kernel(self, capsys):
        assert main(["analyze", "wavetoy"]) == 0
        out = capsys.readouterr().out
        for kernel in ("wt_step", "wt_init", "wt_norm", "wt_startup"):
            assert kernel in out
        assert "program AVF" in out

    def test_single_kernel_target(self, capsys):
        assert main(["analyze", "wt_norm"]) == 0
        out = capsys.readouterr().out
        assert "wt_norm" in out
        assert "wt_step" not in out

    def test_json_output_has_register_scores(self, capsys):
        assert main(["analyze", "wavetoy", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {f["name"] for f in payload["functions"]}
        assert "wt_step" in names
        step = next(f for f in payload["functions"] if f["name"] == "wt_step")
        assert set(step["register_avf"]) == {
            "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
        }
        assert 0.0 <= step["text_avf"] <= 1.0

    def test_lint_clean_apps_exit_zero(self, capsys):
        for target in ("wavetoy", "moldyn", "climate", "ablation"):
            assert main(["analyze", "--lint", target]) == 0
            assert "0 diagnostic(s)" in capsys.readouterr().out

    def test_lint_json_payload(self, capsys):
        assert main(["analyze", "--lint", "--json", "ablation"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []

    def test_unknown_target_is_an_error(self, capsys):
        assert main(["analyze", "nonesuch"]) == 2
        assert "unknown analysis target" in capsys.readouterr().err


class TestAnalyzeMpi:
    def test_shipped_apps_lint_clean(self, capsys):
        for target in ("wavetoy", "moldyn", "climate"):
            assert main(["analyze", "--mpi", "--lint", target]) == 0
            out = capsys.readouterr().out
            assert "0 diagnostic(s)" in out
            assert "dry run completed" in out

    def test_buggy_fixture_exits_nonzero(self, capsys):
        assert main(["analyze", "--mpi", "--lint", "buggy"]) == 1
        out = capsys.readouterr().out
        for code in ("SA103", "SA104", "SA106", "SA107"):
            assert code in out
        assert "0 diagnostic(s)" not in out

    def test_human_output_has_vulnerability_map(self, capsys):
        assert main(["analyze", "--mpi", "wavetoy"]) == 0
        out = capsys.readouterr().out
        assert "MPI events" in out
        assert "elided kernel calls" in out
        assert "header" in out  # the per-rank map mentions header bytes

    def test_json_schema(self, capsys):
        assert main(["analyze", "--mpi", "--json", "climate"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["target"] == "climate"
        assert payload["nprocs"] == 4
        assert payload["status"] == "completed"
        assert set(payload["skeleton"]) == {"events", "packets", "kernel_calls"}
        vuln = payload["vulnerability"]
        assert 0.0 < vuln["structural_score"] < 1.0
        assert vuln["total_bytes"] > 0
        assert len(vuln["ranks"]) == 4
        assert {r["rank"] for r in vuln["ranks"]} == {0, 1, 2, 3}
        assert "diagnostics" not in payload  # only present with --lint

    def test_json_lint_diagnostics(self, capsys):
        assert main(["analyze", "--mpi", "--lint", "--json", "buggy"]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert codes == {"SA103", "SA104", "SA106", "SA107"}
        for d in payload["diagnostics"]:
            assert set(d) == {"code", "function", "insn_index", "message"}

    def test_nprocs_flag(self, capsys):
        assert main(["analyze", "--mpi", "--json", "--nprocs", "2", "wavetoy"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nprocs"] == 2
        assert len(payload["vulnerability"]["ranks"]) == 2

    def test_unknown_mpi_target_is_an_error(self, capsys):
        assert main(["analyze", "--mpi", "wt_step"]) == 2
        err = capsys.readouterr().err
        assert "unknown MPI analysis target" in err
        assert "buggy" in err  # the fixture is advertised


class TestAnalyzeOutcomes:
    def test_wavetoy_audit_is_clean(self, capsys):
        assert main(["analyze", "--outcomes", "--nprocs", "2", "wavetoy"]) == 0
        out = capsys.readouterr().out
        assert "audit: 0 finding(s)" in out
        assert "hang-bit floor" in out
        assert "regular_reg" in out and "message" in out

    def test_json_payload(self, capsys):
        assert (
            main(["analyze", "--outcomes", "--json", "--nprocs", "2", "wavetoy"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == ANALYZE_SCHEMA_VERSION
        assert payload["target"] == "wavetoy"
        assert payload["nprocs"] == 2
        assert payload["diagnostics"] == []
        regions = {r["region"] for r in payload["regions"]}
        assert regions == {"regular_reg", "text", "data", "bss", "message"}
        for r in payload["regions"]:
            # the masked stratum is oracle-proof-only, in the CLI too
            assert r["strata"].get("masked", 0) == r["masked_oracle_proven"]
        assert payload["windows"]["static"][0] < payload["windows"]["static"][1]

    def test_unknown_target_is_an_error(self, capsys):
        assert main(["analyze", "--outcomes", "nonesuch"]) == 2
        assert capsys.readouterr().err


class TestSchemaVersion:
    def test_every_json_emitter_stamps_the_shared_version(self, capsys):
        emitters = (
            ["analyze", "--json", "wavetoy"],
            ["analyze", "--lint", "--json", "ablation"],
            ["analyze", "--mpi", "--json", "--nprocs", "2", "wavetoy"],
            ["analyze", "--propagation", "--json", "wavetoy"],
            ["analyze", "--outcomes", "--json", "--nprocs", "2", "wavetoy"],
        )
        for argv in emitters:
            assert main(argv) == 0, argv
            payload = json.loads(capsys.readouterr().out)
            assert payload["schema_version"] == ANALYZE_SCHEMA_VERSION, argv
