"""AVF estimator: register scores, loop weighting, text-bit verdicts."""

from repro.analysis.liveness import OPTIMIZED_SOURCE, UNOPTIMIZED_SOURCE
from repro.cpu.assembler import assemble_function
from repro.cpu.isa import Insn, Op, UndefinedOpcode, decode, encode
from repro.staticanalysis.avf import (
    Predicted,
    analyze_function,
    classify_bit,
    register_avf,
    text_vulnerability_map,
)
from repro.staticanalysis.cfg import ControlFlowGraph


def cfg_of(source: str) -> ControlFlowGraph:
    return ControlFlowGraph.from_function(assemble_function("f", source))


class TestRegisterAVF:
    def test_scores_are_probabilities(self):
        for source in (OPTIMIZED_SOURCE, UNOPTIMIZED_SOURCE):
            scores = register_avf(cfg_of(source))
            assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_unused_registers_score_zero(self):
        scores = register_avf(cfg_of("movi eax, 1\nret"))
        assert scores["edi"] == 0.0
        assert scores["ebx"] == 0.0

    def test_loop_resident_register_scores_higher_than_scratch(self):
        scores = register_avf(cfg_of(OPTIMIZED_SOURCE))
        # the accumulator lives across the whole loop; edx is a one-insn
        # temporary inside it
        assert scores["eax"] > scores["edx"]

    def test_loop_weighting_dominates(self):
        # esi is the loop bound (live through the hot loop), read every
        # iteration; without loop weighting its score would match any
        # prologue-only register
        scores = register_avf(cfg_of(OPTIMIZED_SOURCE))
        assert scores["esi"] > 0.5

    def test_optimized_kernel_has_more_live_registers(self):
        """The tier-1 agreement check with the section-6.1.1 ablation:
        register-resident code keeps strictly more registers live."""
        opt = analyze_function(assemble_function("k", OPTIMIZED_SOURCE))
        unopt = analyze_function(assemble_function("k", UNOPTIMIZED_SOURCE))
        assert len(opt.live_registers) > len(unopt.live_registers)

    def test_live_counts_match_registers_used_ablation(self):
        """Static liveness agrees with the dynamic ablation's static
        measurement exactly: every used register has a live window in
        these kernels, and vice versa."""
        for source in (OPTIMIZED_SOURCE, UNOPTIMIZED_SOURCE):
            fn = assemble_function("kernel", source)
            report = analyze_function(fn)
            assert set(report.live_registers) == fn.registers_used()


class TestTextMapOpcodeByte:
    def test_matches_decoder_brute_force(self):
        """The map's CRASH verdicts for opcode bits must agree with the
        actual decoder outcome on the flipped word."""
        fn = assemble_function("k", OPTIMIZED_SOURCE)
        cfg = ControlFlowGraph.from_function(fn)
        for i, insn in enumerate(cfg.insns):
            word = bytearray(encode(insn))
            for bit in range(8):
                verdict = classify_bit(insn, i, len(cfg.insns), bit)
                flipped = bytes([word[0] ^ (1 << bit)]) + bytes(word[1:])
                try:
                    new = decode(flipped)
                    undefined = False
                except UndefinedOpcode:
                    undefined = True
                if undefined:
                    assert verdict is Predicted.CRASH
                elif new.op is Op.HLT:
                    assert verdict is Predicted.CRASH
                else:
                    assert verdict is Predicted.INCORRECT

    def test_flip_to_hlt_is_crash(self):
        # NOP (0x01) ^ bit0 -> 0x00 undefined; ^ bit1 -> 0x03 undefined;
        # HLT (0x02) is one flip from NOP via bit 1? 0x01^0x02 = 0x03 no.
        # MOVI 0x10 ^ ... use a direct pair: 0x03 undefined anyway, so
        # construct from Op values: HLT=0x02, NOP=0x01 differ in 2 bits.
        # Take 0x12 LOAD ^ bit4 = 0x02 HLT.
        insn = Insn(Op.LOAD, r1=1, r2=2)
        assert classify_bit(insn, 0, 4, 4) is Predicted.CRASH


class TestTextMapRegisterFields:
    def test_unused_field_is_benign(self):
        insn = Insn(Op.MOVI, r1=1, imm=7)  # r2/r3/r4 unused
        for bit in range(8, 12):  # low nibble of byte 1 = r2
            assert classify_bit(insn, 0, 1, bit) is Predicted.BENIGN

    def test_used_field_is_incorrect(self):
        insn = Insn(Op.MOV, r1=1, r2=2)
        # r1 = high nibble of byte 1 -> bits 12..14 matter
        for bit in (12, 13, 14):
            assert classify_bit(insn, 0, 1, bit) is Predicted.INCORRECT

    def test_register_alias_bit_is_benign(self):
        """The register file masks indices with & 7, so the top bit of a
        used register field cannot change behaviour."""
        insn = Insn(Op.MOV, r1=1, r2=2)
        assert classify_bit(insn, 0, 1, 15) is Predicted.BENIGN  # r1 bit 3
        assert classify_bit(insn, 0, 1, 11) is Predicted.BENIGN  # r2 bit 3


class TestTextMapSubop:
    def test_vector_subop_flip_to_valid_is_incorrect(self):
        insn = Insn(Op.VBIN, r1=1, r2=2, r3=3, r4=4, subop=0)  # ADD
        # ADD(0) ^ bit0 -> SUB(1): valid
        assert classify_bit(insn, 0, 1, 24) is Predicted.INCORRECT

    def test_vector_subop_flip_to_invalid_is_crash(self):
        insn = Insn(Op.VBIN, r1=1, r2=2, r3=3, r4=4, subop=0)
        # ADD(0) ^ bit7 -> 128: no such VecOp
        assert classify_bit(insn, 0, 1, 31) is Predicted.CRASH

    def test_scalar_subop_is_benign(self):
        insn = Insn(Op.ADD, r1=1, r2=2)
        for bit in range(24, 32):
            assert classify_bit(insn, 0, 1, bit) is Predicted.BENIGN


class TestTextMapImmediate:
    def test_branch_flip_inside_function_is_incorrect(self):
        # JMP +0 (to the next insn) in a 16-insn function: flipping bit
        # 3 gives displacement 8, still inside
        insn = Insn(Op.JMP, imm=0)
        assert classify_bit(insn, 0, 16, 32 + 3) is Predicted.INCORRECT

    def test_branch_flip_outside_function_is_crash(self):
        insn = Insn(Op.JMP, imm=0)
        # bit 10 -> displacement 1024 = 128 insns ahead: outside a
        # 4-insn function
        assert classify_bit(insn, 0, 4, 32 + 10) is Predicted.CRASH

    def test_branch_flip_misaligning_is_crash(self):
        insn = Insn(Op.JMP, imm=0)
        assert classify_bit(insn, 0, 64, 32 + 0) is Predicted.CRASH

    def test_branch_sign_bit_is_crash_for_short_functions(self):
        insn = Insn(Op.JMP, imm=0)
        assert classify_bit(insn, 4, 8, 32 + 31) is Predicted.CRASH

    def test_unused_imm_is_benign(self):
        insn = Insn(Op.ADD, r1=1, r2=2)
        for bit in range(32, 64):
            assert classify_bit(insn, 0, 1, bit) is Predicted.BENIGN

    def test_data_imm_is_incorrect(self):
        insn = Insn(Op.MOVI, r1=1, imm=5)
        assert classify_bit(insn, 0, 1, 32 + 7) is Predicted.INCORRECT

    def test_mem_offset_low_bits_incorrect_high_bits_crash(self):
        insn = Insn(Op.LOAD, r1=1, r2=2, imm=8)
        assert classify_bit(insn, 0, 1, 32 + 4) is Predicted.INCORRECT
        assert classify_bit(insn, 0, 1, 32 + 30) is Predicted.CRASH

    def test_shift_count_mask_bits_benign(self):
        insn = Insn(Op.SHL, r1=1, imm=3)
        assert classify_bit(insn, 0, 1, 32 + 2) is Predicted.INCORRECT
        assert classify_bit(insn, 0, 1, 32 + 9) is Predicted.BENIGN

    def test_relocated_imm_classified_as_address(self):
        fn = assemble_function("f", "movi eax, $sym\nret")
        cfg = ControlFlowGraph.from_function(fn)
        vmap = text_vulnerability_map(cfg)
        assert vmap[0][32 + 2] is Predicted.INCORRECT
        assert vmap[0][32 + 30] is Predicted.CRASH


class TestReport:
    def test_map_shape(self):
        cfg = cfg_of(OPTIMIZED_SOURCE)
        vmap = text_vulnerability_map(cfg)
        assert len(vmap) == len(cfg.insns)
        assert all(len(bits) == 64 for bits in vmap)

    def test_counts_sum_to_total_bits(self):
        fn = assemble_function("k", OPTIMIZED_SOURCE)
        report = analyze_function(fn)
        assert sum(report.text_bits.values()) == 64 * report.n_insns

    def test_text_avf_in_unit_interval(self):
        report = analyze_function(assemble_function("k", OPTIMIZED_SOURCE))
        assert 0.0 < report.text_avf < 1.0

    def test_to_dict_is_json_ready(self):
        import json

        report = analyze_function(assemble_function("k", UNOPTIMIZED_SOURCE))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["name"] == "k"
        assert set(payload["register_avf"]) == {
            "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
        }
