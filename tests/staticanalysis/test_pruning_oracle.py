"""Masking-oracle verdicts, reason by reason, plus a soundness check
against real executions: nothing the oracle prunes may ever err."""

import pytest

from repro.engine.trial import Manifestation
from repro.injection.campaign import Campaign
from repro.injection.faults import FaultSpec, Region
from repro.staticanalysis.propagation.pruning import FP_BOOKKEEPING


@pytest.fixture(scope="module")
def campaign():
    return Campaign.from_registry("wavetoy", nprocs=2, seed=77)


@pytest.fixture(scope="module")
def oracle(campaign):
    return campaign.masking_oracle()


@pytest.fixture(scope="module")
def symtab(campaign):
    return campaign.reference().symtab


def addr_in(symtab, name, offset=0):
    return symtab.lookup(name).addr + offset


class TestTextVerdicts:
    def test_cold_padding_text_is_masked(self, oracle, symtab):
        spec = FaultSpec(
            Region.TEXT, rank=0, address=addr_in(symtab, "wt_io_cold", 64)
        )
        v = oracle.verdict(spec)
        assert v.masked and v.reason == "cold-text"

    def test_benign_kernel_bit_is_masked(self, oracle, symtab, campaign):
        # scan the first kernel word for a bit the AVF classifier proves
        # dead; the shipped encodings always have unused operand bits
        base = addr_in(symtab, "wt_step")
        masked = [
            bit
            for bit in range(8)
            for off in range(8)
            if oracle.verdict(
                FaultSpec(Region.TEXT, 0, address=base + off, bit=bit)
            ).reason
            == "benign-text-bit"
        ]
        assert masked

    def test_live_kernel_bits_run(self, oracle, symtab):
        base = addr_in(symtab, "wt_step")
        reasons = {
            oracle.verdict(
                FaultSpec(Region.TEXT, 0, address=base + off, bit=bit)
            ).reason
            for off in range(16)
            for bit in range(8)
        }
        assert "dynamic-target" in reasons

    def test_mpi_library_text_runs(self, oracle, symtab):
        lib = [
            s for s in symtab.symbols(section="text")
            if s.library != "user"
        ]
        assert lib
        spec = FaultSpec(Region.TEXT, 0, address=lib[0].addr)
        assert not oracle.verdict(spec).masked


class TestStaticDataVerdicts:
    def test_cold_symbol_is_masked(self, oracle, symtab):
        spec = FaultSpec(
            Region.DATA, 0, address=addr_in(symtab, "wt_coeff_table", 100)
        )
        v = oracle.verdict(spec)
        assert v.masked and v.reason == "cold-symbol"

    def test_hot_symbol_runs(self, oracle, symtab):
        spec = FaultSpec(Region.DATA, 0, address=addr_in(symtab, "wt_source"))
        assert not oracle.verdict(spec).masked

    def test_cold_bss_is_masked(self, oracle, symtab):
        spec = FaultSpec(
            Region.BSS, 0, address=addr_in(symtab, "wt_workspace", 8)
        )
        assert oracle.verdict(spec).reason == "cold-symbol"


class TestFpVerdicts:
    @pytest.mark.parametrize("target", sorted(FP_BOOKKEEPING))
    def test_bookkeeping_words_are_masked(self, oracle, target):
        spec = FaultSpec(Region.FP_REG, 0, fp_target=target)
        assert oracle.verdict(spec).reason == "fp-bookkeeping"

    @pytest.mark.parametrize("target", ["st0", "st5", "cwd", "swd", "twd"])
    def test_stack_and_control_words_run(self, oracle, target):
        spec = FaultSpec(Region.FP_REG, 0, fp_target=target)
        assert not oracle.verdict(spec).masked


class TestDynamicRegionsNeverPruned:
    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(Region.HEAP, 0, address=0),
            FaultSpec(Region.STACK, 0),
            FaultSpec(Region.REGULAR_REG, 0, reg_index=0),
            FaultSpec(Region.MESSAGE, 0, target_byte=0),
        ],
        ids=lambda s: s.region.value,
    )
    def test_runs(self, oracle, spec):
        v = oracle.verdict(spec)
        assert not v.masked and v.reason == "dynamic-target"


class TestSoundness:
    def test_every_pruned_text_fault_is_correct(self, campaign, oracle):
        # the differential that matters: execute the faults the oracle
        # would have skipped and demand they all come back CORRECT
        with campaign.engine() as eng:
            specs = [eng.make_spec(Region.TEXT, i) for i in range(24)]
            pruned = [s for s in specs if oracle.verdict(s.fault).masked]
            assert pruned  # text is mostly cold: some must be prunable
            for result in eng.run_trials(pruned):
                assert result.manifestation is Manifestation.CORRECT
