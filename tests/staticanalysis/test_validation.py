"""Static predictions vs the dynamic register-injection ground truth.

The heavyweight correlation benchmark lives in
``benchmarks/test_static_avf_correlation.py``; the tier-1 checks here
pin the structural agreements that must hold exactly (the section-6.1.1
ablation direction) plus a small smoke of the dynamic side.
"""

import numpy as np
import pytest

from repro.analysis.liveness import (
    OPTIMIZED_SOURCE,
    UNOPTIMIZED_SOURCE,
    register_usage_report,
)
from repro.cpu.registers import EAX, EBX, REG_INDEX
from repro.staticanalysis.validation import (
    dynamic_register_sensitivity,
    spearman,
    static_live_register_count,
    static_register_scores,
)


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_inversion(self):
        assert spearman([1, 2, 3], [9, 5, 1]) == pytest.approx(-1.0)

    def test_ties_get_average_ranks(self):
        # monotone up to a tie: still strongly positive, not 1.0
        rho = spearman([1, 1, 2, 3], [1, 2, 3, 4])
        assert 0.8 < rho < 1.0

    def test_constant_input_is_zero(self):
        assert spearman([5, 5, 5], [1, 2, 3]) == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])


class TestStaticLivenessAgreesWithAblation:
    """Tier-1 acceptance: the static liveness pass reproduces the
    optimized-vs-unoptimized register counts the dynamic ablation
    measures (paper section 6.1.1)."""

    def test_optimized_keeps_more_registers_live(self):
        assert static_live_register_count(
            OPTIMIZED_SOURCE
        ) > static_live_register_count(UNOPTIMIZED_SOURCE)

    def test_counts_match_the_dynamic_ablations_static_measurement(self):
        report = register_usage_report(trials=1, seed=3)
        assert (
            static_live_register_count(OPTIMIZED_SOURCE)
            == report.metrics["static_optimized"]
        )
        assert (
            static_live_register_count(UNOPTIMIZED_SOURCE)
            == report.metrics["static_unoptimized"]
        )


class TestStaticScores:
    def test_loop_registers_outscore_unused(self):
        scores = static_register_scores(OPTIMIZED_SOURCE)
        assert scores["eax"] > 0.5
        assert scores["ebx"] == 0.0

    def test_spill_style_lowers_register_exposure(self):
        opt = static_register_scores(OPTIMIZED_SOURCE)
        unopt = static_register_scores(UNOPTIMIZED_SOURCE)
        # the -O0 variant keeps the counter in memory, so its register
        # exposure (mean AVF) drops - the paper's robustness trade
        assert sum(unopt.values()) < sum(opt.values())


class TestDynamicSmoke:
    def test_unused_register_is_insensitive(self):
        rng = np.random.default_rng(2)
        rate = dynamic_register_sensitivity(OPTIMIZED_SOURCE, EBX, 10, rng)
        assert rate == 0.0

    def test_accumulator_is_sensitive(self):
        rng = np.random.default_rng(2)
        rate = dynamic_register_sensitivity(OPTIMIZED_SOURCE, EAX, 10, rng)
        assert rate > 0.5

    def test_index_lookup_matches_names(self):
        assert REG_INDEX["eax"] == EAX
