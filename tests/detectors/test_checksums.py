"""Application-level message checksums."""

import pytest

from repro.detectors.checksums import (
    ChecksumMismatch,
    checksum_cost_blocks,
    fletcher32,
    seal,
    verify,
)
from repro.errors import AppAbort


class TestFletcher32:
    def test_deterministic(self):
        assert fletcher32(b"abcdef") == fletcher32(b"abcdef")

    def test_known_sensitivity(self):
        assert fletcher32(b"abcdef") != fletcher32(b"abcdeg")

    def test_order_sensitive(self):
        # (unlike a plain sum - Fletcher catches transpositions)
        assert fletcher32(b"ab") != fletcher32(b"ba")

    def test_empty(self):
        assert fletcher32(b"") == 0

    def test_odd_length_padded(self):
        assert fletcher32(b"abc") == fletcher32(b"abc\x00")

    def test_large_input_exact(self):
        # Exercise the blocked modulo reduction.
        data = bytes(range(256)) * 2048  # 512 KiB
        reference = _fletcher_slow(data)
        assert fletcher32(data) == reference


def _fletcher_slow(data: bytes) -> int:
    if len(data) % 2:
        data += b"\x00"
    c0 = c1 = 0
    for i in range(0, len(data), 2):
        w = data[i] | (data[i + 1] << 8)
        c0 = (c0 + w) % 65535
        c1 = (c1 + c0) % 65535
    return (c1 << 16) | c0


class TestSealVerify:
    def test_roundtrip(self):
        payload = b"coordinates" * 10
        assert verify(seal(payload)) == payload

    def test_single_bit_flip_detected(self):
        sealed = bytearray(seal(b"x" * 64))
        for offset in (0, 4, 8, 40):  # trailer and payload positions
            corrupted = bytearray(sealed)
            corrupted[offset] ^= 0x10
            with pytest.raises(ChecksumMismatch):
                verify(bytes(corrupted))

    def test_mismatch_is_app_abort(self):
        assert issubclass(ChecksumMismatch, AppAbort)

    def test_truncated_blob(self):
        with pytest.raises(ChecksumMismatch):
            verify(b"\x01\x02")

    def test_length_field_checked(self):
        sealed = bytearray(seal(b"abcd"))
        sealed[4] ^= 0x01  # length field
        with pytest.raises(ChecksumMismatch):
            verify(bytes(sealed))


class TestCostModel:
    def test_verify_charges_clock(self):
        from tests.conftest import build_image

        _, vm = build_image({"main": "ret"})
        before = vm.clock.blocks
        verify(seal(b"y" * 640), vm=vm)
        assert vm.clock.blocks - before == checksum_cost_blocks(640)

    def test_cost_scales_with_size(self):
        assert checksum_cost_blocks(64) < checksum_cost_blocks(6400)
        assert checksum_cost_blocks(1) >= 1
