"""ABFT checksum-matrix scheme (section 8.2 extension)."""

import numpy as np
import pytest

from repro.detectors.abft import (
    AbftOutcome,
    checked_matmul,
    coverage_experiment,
    encode_columns,
    encode_rows,
    flip_float_bit,
    overhead_ratio,
    verify_and_correct,
)


@pytest.fixture
def product(rng):
    a = rng.standard_normal((8, 6))
    b = rng.standard_normal((6, 10))
    return checked_matmul(a, b), (a @ b)


class TestEncoding:
    def test_column_encoding(self, rng):
        a = rng.standard_normal((5, 4))
        enc = encode_columns(a)
        assert enc.shape == (6, 4)
        np.testing.assert_allclose(enc[5], a.sum(axis=0))

    def test_row_encoding(self, rng):
        b = rng.standard_normal((4, 7))
        enc = encode_rows(b)
        assert enc.shape == (4, 8)
        np.testing.assert_allclose(enc[:, 7], b.sum(axis=1))

    def test_vector_rejected(self):
        with pytest.raises(ValueError):
            encode_columns(np.zeros(4))

    def test_product_is_fully_encoded(self, product):
        c_full, truth = product
        np.testing.assert_allclose(c_full[:8, :10], truth, atol=1e-12)
        np.testing.assert_allclose(c_full[8, :10], truth.sum(axis=0), atol=1e-10)
        np.testing.assert_allclose(c_full[:8, 10], truth.sum(axis=1), atol=1e-10)


class TestVerifyCorrect:
    def test_clean_product_ok(self, product):
        c_full, truth = product
        data, report = verify_and_correct(c_full)
        assert report.outcome is AbftOutcome.OK
        np.testing.assert_array_equal(data, truth)

    @pytest.mark.parametrize("bit", [40, 52, 55, 62])
    def test_data_element_corrected(self, product, bit):
        c_full, truth = product
        c = c_full.copy()
        c[3, 4] = flip_float_bit(c[3, 4], bit)
        data, report = verify_and_correct(c)
        assert report.outcome is AbftOutcome.CORRECTED
        assert report.location == (3, 4)
        np.testing.assert_allclose(data, truth, rtol=1e-9)

    def test_astronomical_upset_corrected_exactly(self, product):
        """Exponent flips to ~1e300 must not destroy the recomputed
        value through floating-point absorption."""
        c_full, truth = product
        c = c_full.copy()
        c[2, 2] = flip_float_bit(c[2, 2], 62)
        assert abs(c[2, 2]) > 1e70 or not np.isfinite(c[2, 2])
        data, report = verify_and_correct(c)
        assert report.outcome is AbftOutcome.CORRECTED
        np.testing.assert_allclose(data, truth, rtol=1e-9)

    def test_checksum_entry_corruption_detected(self, product):
        c_full, _ = product
        c = c_full.copy()
        c[8, 3] = flip_float_bit(c[8, 3], 60)  # checksum row element
        _, report = verify_and_correct(c)
        assert report.outcome is AbftOutcome.DETECTED

    def test_two_element_damage_not_miscorrected(self, product):
        c_full, truth = product
        c = c_full.copy()
        c[1, 1] = flip_float_bit(c[1, 1], 58)
        c[2, 5] = flip_float_bit(c[2, 5], 58)
        data, report = verify_and_correct(c)
        assert report.outcome is AbftOutcome.DETECTED

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            verify_and_correct(np.zeros((1, 1)))


class TestCoverage:
    def test_no_escapes(self, rng):
        stats = coverage_experiment(120, 10, rng)
        assert stats.escaped == 0
        assert stats.coverage == 1.0
        assert stats.corrected > 0
        assert stats.detected > 0  # checksum-entry hits

    def test_flip_float_bit_involution(self):
        v = 1.2345
        assert flip_float_bit(flip_float_bit(v, 17), 17) == v
        with pytest.raises(ValueError):
            flip_float_bit(v, 64)

    def test_overhead_matches_silva(self):
        """~10% at n ~ 20 (Silva's measurement the paper cites)."""
        assert 0.08 < overhead_ratio(20) < 0.12
        assert overhead_ratio(100) < overhead_ratio(10)
        with pytest.raises(ValueError):
            overhead_ratio(0)
