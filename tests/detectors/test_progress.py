"""Progress-metric hang detection (section 7)."""

import pytest

from repro.detectors.progress import ProgressMonitor, ProgressSample


def feed(monitor, rates, start_tick=1, start_value=0):
    value = start_value
    tick = start_tick
    for r in rates:
        value += r
        monitor.record(ProgressSample(tick=tick, blocks=value, messages=value // 10))
        tick += 1
    return tick, value


class TestRates:
    def test_rate_needs_two_samples(self):
        m = ProgressMonitor()
        assert m.rate() is None
        feed(m, [100])
        assert m.rate() is None
        feed(m, [100], start_tick=2, start_value=100)
        assert m.rate() == 100.0

    def test_windowed_rate(self):
        m = ProgressMonitor(window=3)
        feed(m, [100, 100, 100, 0, 0])
        assert m.rate() == 0.0  # window covers only the stalled tail

    def test_monotonic_ticks_enforced(self):
        m = ProgressMonitor()
        m.record(ProgressSample(tick=5, blocks=1))
        with pytest.raises(ValueError):
            m.record(ProgressSample(tick=5, blocks=2))


class TestStallDetection:
    def test_healthy_run_never_stalls(self):
        m = ProgressMonitor(window=4, threshold=0.1)
        feed(m, [100] * 10)
        m.calibrate()
        feed(m, [95] * 10, start_tick=11, start_value=1000)
        assert not m.stalled()

    def test_stall_detected(self):
        m = ProgressMonitor(window=4, threshold=0.1)
        next_tick, value = feed(m, [100] * 10)
        m.calibrate()
        feed(m, [0] * 8, start_tick=next_tick, start_value=value)
        assert m.stalled()

    def test_detection_tick_post_hoc(self):
        m = ProgressMonitor(window=4, threshold=0.1)
        next_tick, value = feed(m, [100] * 10)
        m.calibrate()
        feed(m, [0] * 10, start_tick=next_tick, start_value=value)
        t = m.detection_tick()
        assert t is not None
        assert t <= next_tick + m.window  # bounded latency

    def test_uncalibrated_never_stalls(self):
        m = ProgressMonitor()
        feed(m, [0] * 5)
        assert not m.stalled()
        assert m.detection_tick() is None

    def test_calibrate_requires_samples(self):
        with pytest.raises(ValueError):
            ProgressMonitor().calibrate()

    def test_message_metric(self):
        m = ProgressMonitor(window=4, threshold=0.1, metric="messages")
        next_tick, value = feed(m, [100] * 8)
        m.calibrate()
        feed(m, [0] * 8, start_tick=next_tick, start_value=value)
        assert m.stalled()

    def test_slowdown_below_threshold_detected(self):
        # 5% of the calibrated rate < 10% threshold -> stall.
        m = ProgressMonitor(window=4, threshold=0.1)
        next_tick, value = feed(m, [1000] * 8)
        m.calibrate()
        feed(m, [50] * 8, start_tick=next_tick, start_value=value)
        assert m.stalled()
