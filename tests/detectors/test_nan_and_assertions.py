"""NaN checks, bound checks and assertions."""

import math

import numpy as np
import pytest

from repro.detectors.assertions import bound_check, sanity_assert
from repro.detectors.nan_checks import nan_check_array, nan_check_value
from repro.errors import AppAbort


class TestNanChecks:
    def test_value_passes(self):
        assert nan_check_value(1.5, "x") == 1.5

    def test_nan_aborts(self):
        with pytest.raises(AppAbort, match="NaN check"):
            nan_check_value(math.nan, "energy")

    def test_inf_aborts(self):
        with pytest.raises(AppAbort):
            nan_check_value(math.inf, "energy")

    def test_array_passes(self):
        nan_check_array(np.arange(10.0), "field")

    def test_array_with_nan_aborts(self):
        arr = np.arange(10.0)
        arr[3] = math.nan
        with pytest.raises(AppAbort, match="non-finite"):
            nan_check_array(arr, "field")

    def test_array_check_charges_clock(self):
        from tests.conftest import build_image

        _, vm = build_image({"main": "ret"})
        before = vm.clock.blocks
        nan_check_array(np.zeros(800), "field", vm=vm)
        assert vm.clock.blocks > before


class TestBoundChecks:
    def test_within_bounds(self):
        bound_check(np.array([0.1, 0.5]), "q", minimum=0.05, maximum=1.0)

    def test_below_minimum_aborts(self):
        """The CAM moisture mechanism."""
        with pytest.raises(AppAbort, match="below minimum"):
            bound_check(np.array([0.1, 0.01]), "moisture", minimum=0.05)

    def test_above_maximum_aborts(self):
        with pytest.raises(AppAbort, match="above maximum"):
            bound_check(np.array([10.0, 100.0]), "velocity", maximum=50.0)

    def test_one_sided_checks(self):
        bound_check(np.array([1e9]), "x", minimum=0.0)  # no max: fine
        bound_check(np.array([-1e9]), "x", maximum=0.0)  # no min: fine


class TestSanityAssert:
    def test_pass(self):
        sanity_assert(True, "invariant")

    def test_fail_aborts(self):
        with pytest.raises(AppAbort, match="assertion"):
            sanity_assert(False, "atom count", "expected 92000")
