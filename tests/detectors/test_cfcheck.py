"""Control-flow signature checking (section 8.2 extension)."""

import pytest

from repro.cpu.isa import INSN_SIZE
from repro.detectors.cfcheck import ControlFlowChecker, ControlFlowViolation, install
from tests.conftest import build_image

LOOP = """
    movi ecx, 0
lp: addi ecx, 1
    cmpi ecx, 20
    jl lp
    movi eax, 7
    ret
"""

CALLS = """
    call @leaf
    addi eax, 1
    ret
"""

LEAF = """
    movi eax, 10
    ret
"""


class TestCleanRuns:
    def test_loop_passes(self):
        image, vm = build_image({"main": LOOP})
        checker = install(vm)
        assert vm.call("main") == 7
        assert checker.checked > 20
        assert checker.violations == 0

    def test_calls_and_returns_pass(self):
        image, vm = build_image({"main": CALLS, "leaf": LEAF})
        checker = install(vm)
        assert vm.call("main") == 11
        assert checker.violations == 0

    def test_indirect_call_to_known_entry_passes(self):
        image, vm = build_image(
            {"main": "movi ecx, @leaf\ncallr ecx\nret", "leaf": LEAF}
        )
        install(vm)
        assert vm.call("main") == 10

    def test_apps_run_clean_under_cfc(self):
        """The full wavetoy kernels must produce zero violations."""
        from repro.apps import WavetoyApp
        from repro.mpi.simulator import Job, JobConfig
        from tests.conftest import SMALL_NPROCS, SMALL_WAVETOY

        class CheckedWavetoy(WavetoyApp):
            def build_process(self, rank, nprocs, config):
                image, vm = super().build_process(rank, nprocs, config)
                install(vm)
                return image, vm

        result = Job(
            CheckedWavetoy(**SMALL_WAVETOY), JobConfig(nprocs=SMALL_NPROCS)
        ).run()
        assert result.completed


class TestViolations:
    def test_corrupted_branch_target_detected(self):
        image, vm = build_image({"main": LOOP})
        install(vm)
        # flip a bit of the JL displacement (instruction 3, imm byte)
        image.text.flip_bit(image.addr_of("main") + 3 * INSN_SIZE + 4, 4)
        with pytest.raises(ControlFlowViolation):
            vm.call("main")

    def test_opcode_turned_into_jump_detected(self):
        image, vm = build_image({"main": LOOP})
        install(vm)
        # turn 'movi eax, 7' (0x10) into JMP (0x30): imm=7 -> wild jump
        addr = image.addr_of("main") + 4 * INSN_SIZE
        image.text.write_u8(addr, 0x30)
        with pytest.raises(ControlFlowViolation):
            vm.call("main")

    def test_violation_is_app_detected(self):
        from repro.errors import AppAbort

        assert issubclass(ControlFlowViolation, AppAbort)

    def test_counters(self):
        image, vm = build_image({"main": LOOP})
        checker = install(vm)
        image.text.flip_bit(image.addr_of("main") + 3 * INSN_SIZE + 4, 6)
        with pytest.raises(ControlFlowViolation):
            vm.call("main")
        assert checker.violations == 1


class TestSignature:
    def test_signature_covers_user_text_only(self):
        image, vm = build_image({"main": LOOP}, mpi_lib=True)
        checker = ControlFlowChecker(image)
        mpi_send = image.symtab.lookup("MPI_Send")
        assert mpi_send.addr not in checker._successors
        assert image.addr_of("main") in checker._successors

    def test_study_runs(self):
        from repro.analysis.cfc_study import control_flow_study

        report = control_flow_study(trials=30, seed=1)
        assert report.metrics["trials"] == 30
        assert report.metrics["detected"] >= 0
        assert "CFC" in report.text
