"""Reliability arithmetic (E1) and cluster models."""

import pytest

from repro.cluster.machines import METACLUSTER, RHAPSODY, SYMPHONY
from repro.cluster.reliability import (
    ASCI_Q,
    CONSERVATIVE_FIT_PER_MB,
    asci_q_escaped_errors,
    days_between_errors,
    expected_soft_errors,
    fit_to_failures_per_hour,
    fit_to_mtbf_hours,
    mtbf_years_to_fit,
)


class TestFitConversions:
    def test_fit_definition(self):
        assert fit_to_failures_per_hour(1e9) == 1.0

    def test_mtbf_inverse(self):
        fit = 2000.0
        assert mtbf_years_to_fit(fit_to_mtbf_hours(fit) / (24 * 365.25)) == pytest.approx(fit)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_to_mtbf_hours(0)
        with pytest.raises(ValueError):
            fit_to_failures_per_hour(-1)
        with pytest.raises(ValueError):
            mtbf_years_to_fit(0)


class TestPaperNumbers:
    def test_one_gb_every_ten_days(self):
        """Section 2.1: 500 FIT/Mb, 1 GB -> an error every ~10 days."""
        days = days_between_errors(1.0, CONSERVATIVE_FIT_PER_MB)
        assert 9.5 < days < 10.5

    def test_asci_q_escapes(self):
        """Section 1: 33,000 x 0.05 ~ 1,650 escaped errors / 10 days."""
        assert asci_q_escaped_errors() == pytest.approx(1650.0)
        assert ASCI_Q.raw_errors_per_window() == 33_000.0

    def test_expected_errors_scales_linearly(self):
        one = expected_soft_errors(1024, 500, 240)
        two = expected_soft_errors(2048, 500, 240)
        assert two == pytest.approx(2 * one)


class TestClusterSpecs:
    def test_rhapsody(self):
        assert RHAPSODY.nodes == 32
        assert RHAPSODY.node.cpu_mhz == 930
        assert RHAPSODY.total_cpus == 64
        assert RHAPSODY.total_ram_bytes == 32 << 30

    def test_symphony(self):
        assert SYMPHONY.nodes == 16
        assert "Myrinet" in SYMPHONY.interconnects
        assert SYMPHONY.node.ram_bytes == 512 << 20

    def test_metacluster_capacity(self):
        assert METACLUSTER.total_cpus == 96

    def test_wavetoy_placement(self):
        """196 MPI processes, two per processor (section 4.2.1)."""
        placement = METACLUSTER.placement(196, processes_per_cpu=2)
        assert len(placement) == 196
        assert placement[0][0] == "Rhapsody"

    def test_placement_capacity_enforced(self):
        # Mild oversubscription (up to 2x) wraps; beyond that is an error.
        assert len(METACLUSTER.placement(97, processes_per_cpu=1)) == 97
        with pytest.raises(ValueError):
            METACLUSTER.placement(400, processes_per_cpu=1)
        with pytest.raises(ValueError):
            METACLUSTER.placement(0)
