"""SECDED (72,64) ECC memory."""

import numpy as np
import pytest

from repro.cluster.ecc import (
    CODEWORD_BITS,
    DATA_BITS,
    DecodeOutcome,
    coverage_experiment,
    decode,
    encode,
    flip_bits,
)


class TestCodec:
    def test_dimensions(self):
        # "every 64 data bits protected by a set of 8 check bits"
        assert DATA_BITS == 64
        assert CODEWORD_BITS == 72

    def test_clean_roundtrip(self):
        for word in (0, 1, 0xDEADBEEF, (1 << 62) - 1):
            data, outcome = decode(encode(word))
            assert data == word
            assert outcome is DecodeOutcome.OK

    def test_range_validation(self):
        with pytest.raises(ValueError):
            encode(1 << 64)
        with pytest.raises(ValueError):
            decode(1 << 72)
        with pytest.raises(ValueError):
            flip_bits(0, [72])

    def test_every_single_bit_corrected(self):
        word = 0xA5A5_5A5A_0F0F_F0F0 & ((1 << 62) - 1)
        code = encode(word)
        for pos in range(CODEWORD_BITS):
            data, outcome = decode(flip_bits(code, [pos]))
            assert outcome is DecodeOutcome.CORRECTED, pos
            assert data == word, pos

    def test_double_bits_detected(self):
        word = 0x0123_4567_89AB_CDEF & ((1 << 62) - 1)
        code = encode(word)
        rng = np.random.default_rng(3)
        for _ in range(40):
            a, b = rng.choice(CODEWORD_BITS, size=2, replace=False)
            _, outcome = decode(flip_bits(code, [int(a), int(b)]))
            assert outcome is DecodeOutcome.DETECTED


class TestCoverage:
    def test_single_bit_full_coverage(self):
        stats = coverage_experiment(100, 1, np.random.default_rng(1))
        assert stats.coverage == 1.0
        assert stats.corrected == 100

    def test_double_bit_full_detection(self):
        stats = coverage_experiment(100, 2, np.random.default_rng(2))
        assert stats.coverage == 1.0
        assert stats.detected == 100

    def test_triple_bit_escapes_exist(self):
        """Multi-bit upsets alias to miscorrections - the mechanism
        behind the paper's cited 10-18% real-world ECC escape rates."""
        stats = coverage_experiment(300, 3, np.random.default_rng(3))
        assert stats.escaped > 0
        assert stats.escape_rate > 0.1

    def test_zero_flips(self):
        stats = coverage_experiment(10, 0, np.random.default_rng(4))
        assert stats.silent_ok == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_experiment(1, -1, np.random.default_rng(0))
