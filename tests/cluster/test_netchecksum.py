"""Network checksum models (Stone & Partridge, section 2.2)."""

import numpy as np
import pytest

from repro.cluster.netchecksum import (
    crc32,
    escape_experiment,
    flip_random_bits,
    host_corruption_experiment,
    internet_checksum,
)


class TestInternetChecksum:
    def test_deterministic_16_bit(self):
        c = internet_checksum(b"hello world")
        assert 0 <= c <= 0xFFFF
        assert c == internet_checksum(b"hello world")

    def test_detects_simple_change(self):
        assert internet_checksum(b"abcd") != internet_checksum(b"abce")

    def test_known_weakness_reordering(self):
        """Ones'-complement sums are word-order insensitive - a class of
        error the 16-bit TCP checksum provably misses."""
        assert internet_checksum(b"\x01\x02\x03\x04") == internet_checksum(
            b"\x03\x04\x01\x02"
        )

    def test_odd_length(self):
        assert internet_checksum(b"abc") == internet_checksum(b"abc\x00")

    def test_rfc1071_example(self):
        # 0x0001 + 0x0203 = 0x0204 -> complement 0xFDFB
        assert internet_checksum(bytes([0x00, 0x01, 0x02, 0x03])) == 0xFDFB


class TestCrc32:
    def test_standard_value(self):
        assert crc32(b"123456789") == 0xCBF43926  # CRC-32 check value

    def test_single_bit_always_detected(self):
        rng = np.random.default_rng(0)
        packet = bytes(rng.integers(0, 256, 64, dtype=np.uint8))
        good = crc32(packet)
        for _ in range(50):
            assert crc32(flip_random_bits(packet, 1, rng)) != good


class TestFlipHelper:
    def test_flips_exact_count(self):
        rng = np.random.default_rng(1)
        packet = bytes(32)
        bad = flip_random_bits(packet, 5, rng)
        diff = int.from_bytes(packet, "little") ^ int.from_bytes(bad, "little")
        assert bin(diff).count("1") == 5

    def test_validation(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            flip_random_bits(b"ab", -1, rng)
        with pytest.raises(ValueError):
            flip_random_bits(b"a", 9, rng)


class TestExperiments:
    def test_wire_corruption_mostly_caught(self):
        stats = escape_experiment(300, 128, 2, np.random.default_rng(2))
        assert stats.trials == 300
        # CRC-32 escape odds ~2^-32: never in 300 trials.
        assert stats.escaped_crc == 0
        assert stats.escape_rate("both") == 0.0

    def test_host_corruption_blinds_the_crc(self):
        """The Stone-Partridge mechanism: the link CRC verified a clean
        packet, so every post-CRC error 'escapes' it; only the 16-bit
        checksum remains."""
        stats = host_corruption_experiment(200, 128, 2, np.random.default_rng(3))
        assert stats.escape_rate("crc") == 1.0
        assert stats.caught_tcp + stats.escaped_tcp == 200
